//! Criterion micro-benchmarks of the system's hot paths: resampling
//! (Algorithm 1), the graph motion model, shortest network distances,
//! Algorithm 2 preprocessing, and the two query evaluators (Algorithms 3
//! and 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ripq_core::{evaluate_knn, evaluate_range, KnnQuery, QueryId};
use ripq_floorplan::{office_building, OfficeParams};
use ripq_geom::{Point2, Rect};
use ripq_graph::{build_walking_graph, AnchorObjectIndex, AnchorSet};
use ripq_obs::Recorder;
use ripq_pf::{
    resample_indices, Heading, IndoorState, MotionModel, ParticlePreprocessor, PreprocessorConfig,
};
use ripq_rfid::{deploy_uniform, DataCollector, ObjectId};
use std::hint::black_box;

fn bench_resampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("resample_indices");
    for n in [64usize, 512] {
        let mut rng = StdRng::seed_from_u64(1);
        let weights: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &weights, |b, w| {
            b.iter(|| resample_indices(&mut rng, black_box(w)))
        });
    }
    group.finish();
}

fn bench_motion_step(c: &mut Criterion) {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let graph = build_walking_graph(&plan);
    let motion = MotionModel::default();
    let mut rng = StdRng::seed_from_u64(2);
    let e = &graph.edges()[0];
    c.bench_function("motion_step_1s", |b| {
        let mut s = IndoorState {
            pos: ripq_graph::GraphPos::new(e.id, e.length() / 2.0),
            heading: Heading::TowardB,
            speed: 1.0,
        };
        b.iter(|| {
            motion.step(&mut rng, &graph, &mut s, 1.0);
            black_box(s.pos)
        })
    });
}

fn bench_shortest_paths(c: &mut Criterion) {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let graph = build_walking_graph(&plan);
    let from = graph.project(Point2::new(31.0, 30.0));
    c.bench_function("dijkstra_office", |b| {
        b.iter(|| black_box(graph.shortest_paths_from(black_box(from))))
    });
}

/// World + populated index shared by the query benches.
fn query_fixture() -> (
    ripq_floorplan::FloorPlan,
    ripq_graph::WalkingGraph,
    AnchorSet,
    AnchorObjectIndex<ObjectId>,
) {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let graph = build_walking_graph(&plan);
    let anchors = AnchorSet::generate(&graph, &plan, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    let mut index = AnchorObjectIndex::new();
    let n_anchors = anchors.anchors().len();
    for i in 0..200u32 {
        // Each object spread over ~16 random anchors.
        let dist: Vec<_> = (0..16)
            .map(|_| {
                (
                    anchors.anchors()[rng.random_range(0..n_anchors)].id,
                    1.0 / 16.0,
                )
            })
            .collect();
        index.set_object(ObjectId::new(i), dist);
    }
    (plan, graph, anchors, index)
}

fn bench_range_query(c: &mut Criterion) {
    let (plan, _graph, anchors, index) = query_fixture();
    let window = Rect::centered(plan.bounds().center(), 12.0, 10.0);
    c.bench_function("range_query_200obj", |b| {
        b.iter(|| {
            black_box(evaluate_range(
                &plan,
                &anchors,
                black_box(&index),
                black_box(&window),
            ))
        })
    });
}

fn bench_knn_query(c: &mut Criterion) {
    let (plan, graph, anchors, index) = query_fixture();
    let q = KnnQuery::new(QueryId::new(0), plan.bounds().center(), 3).unwrap();
    c.bench_function("knn_query_200obj_k3", |b| {
        b.iter(|| {
            black_box(evaluate_knn(
                &graph,
                &anchors,
                black_box(&index),
                black_box(&q),
            ))
        })
    });
}

fn bench_preprocess(c: &mut Criterion) {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let graph = build_walking_graph(&plan);
    let anchors = AnchorSet::generate(&graph, &plan, 1.0);
    let readers = deploy_uniform(&plan, &graph, 19, 2.0);
    let pre = ParticlePreprocessor::new(&graph, &anchors, &readers, PreprocessorConfig::default());
    // A 30-second reading history past two readers.
    let mut collector = DataCollector::new();
    let o = ObjectId::new(0);
    for s in 0..30u64 {
        if s < 4 {
            collector.ingest_second(s, &[(o, readers[0].id())]);
        } else if (12..16).contains(&s) {
            collector.ingest_second(s, &[(o, readers[1].id())]);
        } else {
            collector.ingest_second(s, &[]);
        }
    }
    let mut rng = StdRng::seed_from_u64(4);
    c.bench_function("preprocess_object_30s_64p", |b| {
        b.iter(|| {
            black_box(
                pre.process_object(&mut rng, &collector, o, 30, None)
                    .expect("object known"),
            )
        })
    });
}

/// Sequential vs. parallel Algorithm 2 over a 200-object workload, with
/// the metrics recorder off and on.
///
/// Every parallelism setting produces bit-identical output (each object
/// filters on its own deterministic RNG stream), so the group measures
/// pure wall-clock scaling of the worker fan-out. The `obs-on` variants
/// quantify the observability tax (atomic adds on shared handles); the
/// explicit delta line below the group makes the overhead visible at a
/// glance.
fn bench_preprocess_parallel(c: &mut Criterion) {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let graph = build_walking_graph(&plan);
    let anchors = AnchorSet::generate(&graph, &plan, 1.0);
    let readers = deploy_uniform(&plan, &graph, 19, 2.0);
    let pre = ParticlePreprocessor::new(&graph, &anchors, &readers, PreprocessorConfig::default());
    let recorder = Recorder::enabled();
    let pre_obs =
        ParticlePreprocessor::new(&graph, &anchors, &readers, PreprocessorConfig::default())
            .with_recorder(&recorder);
    // 200 objects, each with a 30-second history past a couple of readers.
    let mut collector = DataCollector::new();
    for s in 0..30u64 {
        let det: Vec<_> = (0..200u32)
            .map(|i| {
                (
                    ObjectId::new(i),
                    readers[((i + s as u32) % 19) as usize].id(),
                )
            })
            .collect();
        collector.ingest_second(s, &det);
    }
    let objects: Vec<ObjectId> = (0..200).map(ObjectId::new).collect();
    let mut group = c.benchmark_group("preprocess_200obj");
    for workers in [1usize, 2, 4] {
        let parallelism = if workers == 1 { None } else { Some(workers) };
        group.bench_with_input(
            BenchmarkId::new("obs-off", workers),
            &parallelism,
            |b, &par| {
                b.iter(|| {
                    black_box(pre.process_streamed(
                        0x5eed,
                        &collector,
                        black_box(&objects),
                        30,
                        None,
                        par,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("obs-on", workers),
            &parallelism,
            |b, &par| {
                b.iter(|| {
                    black_box(pre_obs.process_streamed(
                        0x5eed,
                        &collector,
                        black_box(&objects),
                        30,
                        None,
                        par,
                    ))
                })
            },
        );
    }
    group.finish();

    // Paired measurement of the observability tax (sequential path, so the
    // delta is not hidden inside thread scheduling noise).
    let reps = 5u32;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        black_box(pre.process_streamed(0x5eed, &collector, &objects, 30, None, None));
    }
    let off = t0.elapsed() / reps;
    let t1 = std::time::Instant::now();
    for _ in 0..reps {
        black_box(pre_obs.process_streamed(0x5eed, &collector, &objects, 30, None, None));
    }
    let on = t1.elapsed() / reps;
    let delta = (on.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64() * 100.0;
    println!(
        "preprocess_200obj observability overhead: off={off:.2?} on={on:.2?} delta={delta:+.2}%"
    );
}

fn bench_symbolic_index(c: &mut Criterion) {
    use ripq_symbolic::SymbolicModel;
    let plan = office_building(&OfficeParams::default()).unwrap();
    let graph = build_walking_graph(&plan);
    let anchors = AnchorSet::generate(&graph, &plan, 1.0);
    let readers = deploy_uniform(&plan, &graph, 19, 2.0);
    let model = SymbolicModel::new(&graph, &anchors, &readers, 1.5);
    let mut collector = DataCollector::new();
    for i in 0..200u32 {
        collector.ingest_second(0, &[(ObjectId::new(i), readers[(i % 19) as usize].id())]);
    }
    for s in 1..=10u64 {
        collector.ingest_second(s, &[]);
    }
    let objects: Vec<ObjectId> = (0..200).map(ObjectId::new).collect();
    c.bench_function("symbolic_index_200obj", |b| {
        b.iter(|| black_box(model.build_index(&collector, black_box(&objects), 10)))
    });
}

fn bench_ptknn(c: &mut Criterion) {
    use ripq_core::{evaluate_ptknn, PtknnQuery};
    let (plan, graph, anchors, index) = query_fixture();
    let q = PtknnQuery::new(plan.bounds().center(), 3, 0.3).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    c.bench_function("ptknn_200obj_k3_100rounds", |b| {
        b.iter(|| {
            black_box(evaluate_ptknn(
                &mut rng,
                &graph,
                &anchors,
                black_box(&index),
                &q,
                100,
            ))
        })
    });
}

fn bench_system_evaluate(c: &mut Criterion) {
    use ripq_core::{IndoorQuerySystem, SystemConfig};
    let plan = office_building(&OfficeParams::default()).unwrap();
    let mut system = IndoorQuerySystem::new(plan, SystemConfig::default(), 11);
    // 50 objects pinging various readers over 20 seconds.
    let reader_ids: Vec<_> = system.readers().iter().map(|r| r.id()).collect();
    for s in 0..20u64 {
        let det: Vec<_> = (0..50u32)
            .map(|i| (ObjectId::new(i), reader_ids[((i + s as u32) % 19) as usize]))
            .collect();
        system.ingest_detections(s, &det);
    }
    let center = system.plan().bounds().center();
    system
        .register_range(Rect::centered(center, 12.0, 10.0))
        .unwrap();
    system.register_knn(center, 3).unwrap();
    c.bench_function("system_evaluate_50obj_2q", |b| {
        let mut now = 20u64;
        b.iter(|| {
            system.ingest_detections(now, &[]);
            let report = system.evaluate(now);
            now += 1;
            black_box(report.candidates_processed)
        })
    });
}

/// Durable-checkpoint tax on the streaming ingest path: a cadence sweep
/// against a no-checkpoint baseline over the same 50-object workload.
///
/// Each measured iteration ingests one second of detections with
/// automatic checkpointing at the given cadence (`every = 0` is the
/// baseline: no snapshot is ever due, so the checkpoint branch costs one
/// predicted-false comparison). The explicit delta lines under the group
/// price each cadence against the baseline the same way the
/// observability-tax line does, so "what does `--checkpoint-every N`
/// cost per ingested second" is visible at a glance.
fn bench_checkpoint_overhead(c: &mut Criterion) {
    use ripq_core::{IndoorQuerySystem, SystemConfig};

    let dir = std::env::temp_dir().join("ripq-bench-checkpoint");
    std::fs::create_dir_all(&dir).expect("bench checkpoint dir");

    // Fresh system per cadence with a 20-second warm history, so every
    // snapshot carries a realistic cache and collector watermark.
    let build = |every: u64, dir: &std::path::Path| {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let cfg = SystemConfig {
            checkpoint_every: every,
            ..SystemConfig::default()
        };
        let mut system = IndoorQuerySystem::new(plan, cfg, 11);
        if every > 0 {
            system.set_checkpoint_dir(dir);
        }
        let reader_ids: Vec<_> = system.readers().iter().map(|r| r.id()).collect();
        for s in 0..20u64 {
            let det: Vec<_> = (0..50u32)
                .map(|i| (ObjectId::new(i), reader_ids[((i + s as u32) % 19) as usize]))
                .collect();
            system.ingest_detections(s, &det);
        }
        (system, reader_ids)
    };

    const CADENCES: [u64; 4] = [0, 1, 8, 32];
    let mut group = c.benchmark_group("checkpoint_overhead");
    for every in CADENCES {
        let (mut system, reader_ids) = build(every, &dir);
        let mut now = 20u64;
        group.bench_with_input(BenchmarkId::from_parameter(every), &every, |b, _| {
            b.iter(|| {
                let det: Vec<_> = (0..50u32)
                    .map(|i| {
                        (
                            ObjectId::new(i),
                            reader_ids[((i + now as u32) % 19) as usize],
                        )
                    })
                    .collect();
                system.ingest_detections(now, &det);
                now += 1;
                black_box(now)
            })
        });
        assert!(
            system.last_checkpoint_error().is_none(),
            "bench snapshots must write cleanly: {:?}",
            system.last_checkpoint_error()
        );
    }
    group.finish();

    // Paired per-second ingest cost, each cadence vs the no-checkpoint
    // baseline, over an identical 200-second drive.
    let reps = 200u64;
    let mut costs: Vec<(u64, std::time::Duration)> = Vec::new();
    for every in CADENCES {
        let (mut system, reader_ids) = build(every, &dir);
        let t = std::time::Instant::now();
        for s in 20..20 + reps {
            let det: Vec<_> = (0..50u32)
                .map(|i| (ObjectId::new(i), reader_ids[((i + s as u32) % 19) as usize]))
                .collect();
            system.ingest_detections(s, &det);
        }
        costs.push((every, t.elapsed() / reps as u32));
    }
    let base = costs[0].1;
    for (every, per_second) in &costs[1..] {
        let delta = (per_second.as_secs_f64() - base.as_secs_f64()) / base.as_secs_f64() * 100.0;
        println!(
            "checkpoint_overhead: every={every} per-second={per_second:.2?} \
             baseline={base:.2?} delta={delta:+.2}%"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_resampling,
    bench_motion_step,
    bench_shortest_paths,
    bench_range_query,
    bench_knn_query,
    bench_preprocess,
    bench_preprocess_parallel,
    bench_symbolic_index,
    bench_ptknn,
    bench_system_evaluate,
    bench_checkpoint_overhead
);
criterion_main!(benches);
