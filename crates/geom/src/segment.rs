//! Line segments: hallway centerlines and walking-graph edges.

use crate::{clamp, Point2, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A directed line segment from `a` to `b`, in meters.
///
/// Walking-graph edges are segments; anchor points and particle positions
/// are parameterized as an *offset* (arc length from `a`) along a segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Point2,
    /// End point.
    pub b: Point2,
}

impl Segment {
    /// Creates a segment between two points.
    #[inline]
    pub const fn new(a: Point2, b: Point2) -> Self {
        Segment { a, b }
    }

    /// Arc length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Point at arc-length `offset` from `a`, clamped to the segment.
    pub fn point_at(&self, offset: f64) -> Point2 {
        let len = self.length();
        if len <= crate::EPSILON {
            return self.a;
        }
        let t = clamp(offset / len, 0.0, 1.0);
        self.a.lerp(self.b, t)
    }

    /// Point at normalized parameter `t ∈ [0,1]` (clamped).
    pub fn point_at_t(&self, t: f64) -> Point2 {
        self.a.lerp(self.b, clamp(t, 0.0, 1.0))
    }

    /// The reversed segment (`b → a`).
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// Midpoint.
    #[inline]
    pub fn midpoint(&self) -> Point2 {
        self.a.midpoint(self.b)
    }

    /// Normalized parameter `t ∈ [0,1]` of the point on the segment closest
    /// to `p`.
    pub fn project_t(&self, p: Point2) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.dot(d);
        if len_sq <= crate::EPSILON * crate::EPSILON {
            return 0.0;
        }
        clamp((p - self.a).dot(d) / len_sq, 0.0, 1.0)
    }

    /// Arc-length offset (from `a`) of the closest point to `p`.
    pub fn project_offset(&self, p: Point2) -> f64 {
        self.project_t(p) * self.length()
    }

    /// Closest point of the segment to `p`.
    pub fn closest_point(&self, p: Point2) -> Point2 {
        self.point_at_t(self.project_t(p))
    }

    /// Euclidean distance from `p` to the segment.
    pub fn distance_to_point(&self, p: Point2) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Axis-aligned bounding box.
    pub fn bounding_box(&self) -> Rect {
        Rect::from_corners(self.a, self.b)
    }

    /// Returns `true` when any part of the segment lies within `r` meters of
    /// point `c` — i.e. the segment crosses a reader's activation disk.
    pub fn intersects_circle(&self, c: Point2, r: f64) -> bool {
        self.distance_to_point(c) <= r
    }

    /// The sub-interval of arc-length offsets `[lo, hi]` whose points are
    /// within `r` of `c`, or `None` if the segment misses the disk.
    ///
    /// Used to place particles uniformly inside a reader's activation range
    /// along graph edges, and to enumerate anchors covered by a reader.
    pub fn circle_overlap_interval(&self, c: Point2, r: f64) -> Option<(f64, f64)> {
        let len = self.length();
        if len <= crate::EPSILON {
            return if self.a.distance(c) <= r {
                Some((0.0, 0.0))
            } else {
                None
            };
        }
        let d = (self.b - self.a) / len; // unit direction
        let f = self.a - c;
        // Solve |f + t·d| = r for arc length t.
        let b_half = f.dot(d);
        let c_term = f.dot(f) - r * r;
        let disc = b_half * b_half - c_term;
        if disc < 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        let t0 = -b_half - sq;
        let t1 = -b_half + sq;
        let lo = clamp(t0, 0.0, len);
        let hi = clamp(t1, 0.0, len);
        if t1 < 0.0 || t0 > len {
            return None;
        }
        Some((lo, hi))
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point2::new(ax, ay), Point2::new(bx, by))
    }

    #[test]
    fn length_and_midpoint() {
        let s = seg(0.0, 0.0, 6.0, 8.0);
        assert!((s.length() - 10.0).abs() < 1e-12);
        assert_eq!(s.midpoint(), Point2::new(3.0, 4.0));
    }

    #[test]
    fn point_at_clamps() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.point_at(-5.0), Point2::new(0.0, 0.0));
        assert_eq!(s.point_at(4.0), Point2::new(4.0, 0.0));
        assert_eq!(s.point_at(25.0), Point2::new(10.0, 0.0));
    }

    #[test]
    fn degenerate_segment_is_total() {
        let s = seg(2.0, 3.0, 2.0, 3.0);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.point_at(1.0), Point2::new(2.0, 3.0));
        assert_eq!(s.project_t(Point2::new(9.0, 9.0)), 0.0);
    }

    #[test]
    fn projection_of_interior_point() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        let p = Point2::new(4.0, 3.0);
        assert!((s.project_offset(p) - 4.0).abs() < 1e-12);
        assert!((s.distance_to_point(p) - 3.0).abs() < 1e-12);
        assert!(s.closest_point(p).approx_eq(Point2::new(4.0, 0.0)));
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.project_t(Point2::new(-5.0, 1.0)), 0.0);
        assert_eq!(s.project_t(Point2::new(15.0, 1.0)), 1.0);
    }

    #[test]
    fn circle_overlap_full_containment() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        let (lo, hi) = s
            .circle_overlap_interval(Point2::new(1.0, 0.0), 5.0)
            .unwrap();
        assert_eq!((lo, hi), (0.0, 2.0));
    }

    #[test]
    fn circle_overlap_partial() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        let (lo, hi) = s
            .circle_overlap_interval(Point2::new(5.0, 0.0), 2.0)
            .unwrap();
        assert!((lo - 3.0).abs() < 1e-9);
        assert!((hi - 7.0).abs() < 1e-9);
    }

    #[test]
    fn circle_overlap_offset_center() {
        // Reader 1 m off the hallway centerline with 2 m range: chord of
        // half-length sqrt(4-1)=sqrt(3) around the projection.
        let s = seg(0.0, 0.0, 10.0, 0.0);
        let (lo, hi) = s
            .circle_overlap_interval(Point2::new(5.0, 1.0), 2.0)
            .unwrap();
        let half = 3.0f64.sqrt();
        assert!((lo - (5.0 - half)).abs() < 1e-9);
        assert!((hi - (5.0 + half)).abs() < 1e-9);
    }

    #[test]
    fn circle_overlap_miss() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert!(s
            .circle_overlap_interval(Point2::new(5.0, 3.0), 2.0)
            .is_none());
        assert!(s
            .circle_overlap_interval(Point2::new(-5.0, 0.0), 2.0)
            .is_none());
        assert!(s
            .circle_overlap_interval(Point2::new(15.0, 0.0), 2.0)
            .is_none());
    }

    #[test]
    fn intersects_circle_consistent_with_interval() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        let c = Point2::new(5.0, 1.9);
        assert!(s.intersects_circle(c, 2.0));
        assert!(s.circle_overlap_interval(c, 2.0).is_some());
    }

    fn coord() -> impl Strategy<Value = f64> {
        -50.0..50.0
    }

    proptest! {
        #[test]
        fn closest_point_is_on_segment(
            ax in coord(), ay in coord(), bx in coord(), by in coord(),
            px in coord(), py in coord(),
        ) {
            let s = seg(ax, ay, bx, by);
            let p = Point2::new(px, py);
            let cp = s.closest_point(p);
            // cp lies on the segment: distances to endpoints sum to length.
            prop_assert!((s.a.distance(cp) + cp.distance(s.b) - s.length()).abs() < 1e-6);
            // cp is no farther than either endpoint.
            prop_assert!(p.distance(cp) <= p.distance(s.a) + 1e-9);
            prop_assert!(p.distance(cp) <= p.distance(s.b) + 1e-9);
        }

        #[test]
        fn overlap_interval_points_inside_disk(
            ax in coord(), ay in coord(), bx in coord(), by in coord(),
            cx in coord(), cy in coord(), r in 0.1..20.0f64,
        ) {
            let s = seg(ax, ay, bx, by);
            let c = Point2::new(cx, cy);
            if let Some((lo, hi)) = s.circle_overlap_interval(c, r) {
                prop_assert!(lo <= hi + 1e-9);
                prop_assert!(s.point_at(lo).distance(c) <= r + 1e-6);
                prop_assert!(s.point_at(hi).distance(c) <= r + 1e-6);
                prop_assert!(s.point_at((lo + hi) * 0.5).distance(c) <= r + 1e-6);
            }
        }
    }
}
