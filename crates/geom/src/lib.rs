//! # ripq-geom — 2-D geometric primitives for RIPQ
//!
//! This crate provides the small set of planar geometry types that the rest
//! of the RIPQ workspace builds on: [`Point2`], axis-aligned rectangles
//! ([`Rect`]) and line segments ([`Segment`]).
//!
//! Indoor floor plans in the EDBT 2013 paper are rectilinear: rooms and
//! hallways are axis-aligned rectangles and hallway centerlines are
//! axis-aligned segments, so these three types (plus a handful of scalar
//! helpers) are sufficient for the whole system — no general polygon
//! machinery is needed.
//!
//! All coordinates are in **meters**, matching the paper's real-world
//! parameters (1 m anchor spacing, 2 m reader activation range, 1 m/s mean
//! walking speed).
//!
//! # Example
//!
//! ```
//! use ripq_geom::{Point2, Rect, Segment};
//!
//! let hallway = Rect::new(0.0, 9.0, 50.0, 2.0);
//! let centerline = Segment::new(Point2::new(0.0, 10.0), Point2::new(50.0, 10.0));
//! // A reader's activation disk covers a 2·√3 m chord of the centerline.
//! let (lo, hi) = centerline
//!     .circle_overlap_interval(Point2::new(25.0, 9.0), 2.0)
//!     .unwrap();
//! assert!((hi - lo - 2.0 * 3.0f64.sqrt()).abs() < 1e-9);
//! assert!(hallway.contains(centerline.point_at(lo)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod point;
mod rect;
mod segment;

pub use point::Point2;
pub use rect::Rect;
pub use segment::Segment;

/// Comparison tolerance used throughout the workspace for geometric
/// predicates on `f64` coordinates (1 nm — far below any indoor feature).
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floating-point scalars are within [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

/// Linearly interpolates between `a` and `b` by `t ∈ [0, 1]`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Clamps `x` into `[lo, hi]`.
///
/// Unlike [`f64::clamp`] this never panics: if `lo > hi` the midpoint of the
/// (degenerate) interval is returned, which keeps hot query paths panic-free
/// in the presence of rounding noise.
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    if lo > hi {
        return (lo + hi) * 0.5;
    }
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_epsilon() {
        assert!(approx_eq(1.0, 1.0 + EPSILON / 2.0));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }

    #[test]
    fn clamp_is_total() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.3, 0.0, 1.0), 0.3);
        // Inverted interval does not panic.
        assert_eq!(clamp(0.3, 1.0, 0.0), 0.5);
    }
}
