//! Axis-aligned rectangles: rooms, hallways and range-query windows.

use crate::Point2;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle described by its min/max corners, in meters.
///
/// Rectangles are *closed*: boundary points are contained. RIPQ uses them
/// for room footprints, hallway footprints and range-query windows
/// (Algorithm 3 of the paper needs rectangle/rectangle intersection areas
/// for its area-ratio compensation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point2,
    max: Point2,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (in any order).
    pub fn from_corners(a: Point2, b: Point2) -> Self {
        Rect {
            min: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from its min corner plus a (non-negative) size.
    pub fn new(min_x: f64, min_y: f64, width: f64, height: f64) -> Self {
        debug_assert!(width >= 0.0 && height >= 0.0, "negative rect size");
        Rect {
            min: Point2::new(min_x, min_y),
            max: Point2::new(min_x + width.max(0.0), min_y + height.max(0.0)),
        }
    }

    /// Creates a rectangle centered at `c` with the given full width/height.
    pub fn centered(c: Point2, width: f64, height: f64) -> Self {
        Rect::new(c.x - width * 0.5, c.y - height * 0.5, width, height)
    }

    /// Min (bottom-left) corner.
    #[inline]
    pub fn min(&self) -> Point2 {
        self.min
    }

    /// Max (top-right) corner.
    #[inline]
    pub fn max(&self) -> Point2 {
        self.max
    }

    /// Width along x (meters).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y (meters).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square meters.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when `other` is entirely inside `self` (closed).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// Returns `true` when the two closed rectangles share at least a point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: Point2::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point2::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// Area of overlap with `other` (0 when disjoint).
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        self.intersection(other).map_or(0.0, |r| r.area())
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point2::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point2::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Rectangle expanded by `margin` on every side (shrinks when negative;
    /// clamped so the result never inverts).
    pub fn inflate(&self, margin: f64) -> Rect {
        let mut min = Point2::new(self.min.x - margin, self.min.y - margin);
        let mut max = Point2::new(self.max.x + margin, self.max.y + margin);
        if min.x > max.x {
            let m = (min.x + max.x) * 0.5;
            min.x = m;
            max.x = m;
        }
        if min.y > max.y {
            let m = (min.y + max.y) * 0.5;
            min.y = m;
            max.y = m;
        }
        Rect { min, max }
    }

    /// Closest point of the rectangle to `p` (is `p` itself when inside).
    pub fn clamp_point(&self, p: Point2) -> Point2 {
        Point2::new(
            crate::clamp(p.x, self.min.x, self.max.x),
            crate::clamp(p.y, self.min.y, self.max.y),
        )
    }

    /// Euclidean distance from `p` to the rectangle (0 when inside).
    pub fn distance_to_point(&self, p: Point2) -> f64 {
        self.clamp_point(p).distance(p)
    }

    /// Returns `true` when a circle at `c` with radius `r` overlaps the
    /// rectangle. Used by the query-aware optimizer (§4.3): an object's
    /// uncertain region is a circle around its last detecting reader.
    pub fn intersects_circle(&self, c: Point2, r: f64) -> bool {
        self.distance_to_point(c) <= r
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(a: f64, b: f64, w: f64, h: f64) -> Rect {
        Rect::new(a, b, w, h)
    }

    #[test]
    fn from_corners_normalizes() {
        let rect = Rect::from_corners(Point2::new(5.0, 1.0), Point2::new(1.0, 5.0));
        assert_eq!(rect.min(), Point2::new(1.0, 1.0));
        assert_eq!(rect.max(), Point2::new(5.0, 5.0));
    }

    #[test]
    fn area_and_center() {
        let rect = r(1.0, 2.0, 4.0, 6.0);
        assert_eq!(rect.area(), 24.0);
        assert_eq!(rect.center(), Point2::new(3.0, 5.0));
        assert_eq!(rect.width(), 4.0);
        assert_eq!(rect.height(), 6.0);
    }

    #[test]
    fn containment_is_closed() {
        let rect = r(0.0, 0.0, 2.0, 2.0);
        assert!(rect.contains(Point2::new(0.0, 0.0)));
        assert!(rect.contains(Point2::new(2.0, 2.0)));
        assert!(rect.contains(Point2::new(1.0, 1.0)));
        assert!(!rect.contains(Point2::new(2.0 + 1e-6, 1.0)));
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(2.0, 2.0, 4.0, 4.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, r(2.0, 2.0, 2.0, 2.0));
        assert_eq!(a.intersection_area(&b), 4.0);
    }

    #[test]
    fn disjoint_rects_do_not_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 1.0, 1.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.intersection_area(&b), 0.0);
    }

    #[test]
    fn touching_edges_count_as_intersecting() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 1.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_area(&b), 0.0);
    }

    #[test]
    fn circle_overlap() {
        let rect = r(0.0, 0.0, 2.0, 2.0);
        assert!(rect.intersects_circle(Point2::new(3.0, 1.0), 1.0));
        assert!(!rect.intersects_circle(Point2::new(3.1, 1.0), 1.0));
        assert!(rect.intersects_circle(Point2::new(1.0, 1.0), 0.1)); // center inside
                                                                     // Corner case: circle near the corner.
        assert!(rect.intersects_circle(Point2::new(3.0, 3.0), 1.5));
        assert!(!rect.intersects_circle(Point2::new(3.0, 3.0), 1.0));
    }

    #[test]
    fn inflate_and_deflate() {
        let rect = r(1.0, 1.0, 2.0, 2.0);
        assert_eq!(rect.inflate(1.0), r(0.0, 0.0, 4.0, 4.0));
        // Over-deflating collapses to the center without inverting.
        let collapsed = rect.inflate(-5.0);
        assert!(collapsed.area() <= 1e-12);
        assert!(collapsed.center().approx_eq(rect.center()));
    }

    #[test]
    fn distance_to_point_zero_inside() {
        let rect = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(rect.distance_to_point(Point2::new(1.0, 1.0)), 0.0);
        assert!((rect.distance_to_point(Point2::new(5.0, 1.0)) - 3.0).abs() < 1e-12);
    }

    fn coord() -> impl Strategy<Value = f64> {
        -100.0..100.0
    }
    fn size() -> impl Strategy<Value = f64> {
        0.0..50.0
    }

    proptest! {
        #[test]
        fn intersection_area_le_min_area(
            ax in coord(), ay in coord(), aw in size(), ah in size(),
            bx in coord(), by in coord(), bw in size(), bh in size(),
        ) {
            let a = Rect::new(ax, ay, aw, ah);
            let b = Rect::new(bx, by, bw, bh);
            let ia = a.intersection_area(&b);
            prop_assert!(ia <= a.area() + 1e-9);
            prop_assert!(ia <= b.area() + 1e-9);
            prop_assert!(ia >= 0.0);
        }

        #[test]
        fn intersection_symmetric(
            ax in coord(), ay in coord(), aw in size(), ah in size(),
            bx in coord(), by in coord(), bw in size(), bh in size(),
        ) {
            let a = Rect::new(ax, ay, aw, ah);
            let b = Rect::new(bx, by, bw, bh);
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
            prop_assert!((a.intersection_area(&b) - b.intersection_area(&a)).abs() < 1e-9);
        }

        #[test]
        fn union_contains_both(
            ax in coord(), ay in coord(), aw in size(), ah in size(),
            bx in coord(), by in coord(), bw in size(), bh in size(),
        ) {
            let a = Rect::new(ax, ay, aw, ah);
            let b = Rect::new(bx, by, bw, bh);
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }

        #[test]
        fn inflate_then_deflate_roundtrip(
            ax in coord(), ay in coord(), aw in 1.0f64..50.0, ah in 1.0f64..50.0,
            m in 0.0f64..10.0,
        ) {
            let a = Rect::new(ax, ay, aw, ah);
            let back = a.inflate(m).inflate(-m);
            prop_assert!((back.width() - a.width()).abs() < 1e-9);
            prop_assert!((back.height() - a.height()).abs() < 1e-9);
            prop_assert!(back.center().approx_eq(a.center()));
        }

        #[test]
        fn contains_rect_iff_intersection_is_inner(
            ax in coord(), ay in coord(), aw in size(), ah in size(),
            bx in coord(), by in coord(), bw in size(), bh in size(),
        ) {
            let a = Rect::new(ax, ay, aw, ah);
            let b = Rect::new(bx, by, bw, bh);
            if a.contains_rect(&b) {
                let i = a.intersection(&b).expect("contained implies overlap");
                prop_assert!((i.area() - b.area()).abs() < 1e-9);
            }
        }

        #[test]
        fn clamp_point_is_contained(
            ax in coord(), ay in coord(), aw in size(), ah in size(),
            px in coord(), py in coord(),
        ) {
            let a = Rect::new(ax, ay, aw, ah);
            prop_assert!(a.contains(a.clamp_point(Point2::new(px, py))));
        }
    }
}
