//! Planar points and the vector operations RIPQ needs on them.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A point (or displacement vector) in the plane, in meters.
///
/// `Point2` doubles as a 2-D vector: subtraction of two points yields the
/// displacement between them, and scalar multiplication scales a
/// displacement. This mirrors common computational-geometry practice and
/// avoids a second, nearly identical type.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate (meters).
    pub x: f64,
    /// Vertical coordinate (meters).
    pub y: f64,
}

impl Point2 {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: Point2) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper when only comparisons
    /// are needed, e.g. nearest-anchor search).
    #[inline]
    pub fn distance_sq(&self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Length of this point interpreted as a vector from the origin.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product with `other` (both interpreted as vectors).
    #[inline]
    pub fn dot(&self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Midpoint of the segment between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation from `self` to `other` by parameter `t`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; values outside `[0,1]`
    /// extrapolate.
    #[inline]
    pub fn lerp(&self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            crate::lerp(self.x, other.x, t),
            crate::lerp(self.y, other.y, t),
        )
    }

    /// Returns the unit vector pointing from `self` towards `other`, or
    /// `None` when the two points coincide (within [`crate::EPSILON`]).
    pub fn direction_to(&self, other: Point2) -> Option<Point2> {
        let d = other - *self;
        let n = d.norm();
        if n <= crate::EPSILON {
            None
        } else {
            Some(d / n)
        }
    }

    /// Returns `true` when both coordinates are finite (not NaN/∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Approximate equality within [`crate::EPSILON`] per coordinate.
    #[inline]
    pub fn approx_eq(&self, other: Point2) -> bool {
        crate::approx_eq(self.x, other.x) && crate::approx_eq(self.y, other.y)
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, s: f64) -> Point2 {
        Point2::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn div(self, s: f64) -> Point2 {
        Point2::new(self.x / s, self.y / s)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a + b, Point2::new(4.0, 1.0));
        assert_eq!(b - a, Point2::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point2::new(1.5, -0.5));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point2::new(0.0, 10.0);
        let b = Point2::new(10.0, 0.0);
        assert!(a.midpoint(b).approx_eq(a.lerp(b, 0.5)));
    }

    #[test]
    fn direction_to_unit_length() {
        let a = Point2::new(1.0, 1.0);
        let b = Point2::new(5.0, 1.0);
        let d = a.direction_to(b).expect("distinct points");
        assert!(d.approx_eq(Point2::new(1.0, 0.0)));
        assert!(a.direction_to(a).is_none());
    }

    #[test]
    fn dot_product_orthogonal() {
        assert_eq!(Point2::new(1.0, 0.0).dot(Point2::new(0.0, 3.0)), 0.0);
    }

    #[test]
    fn display_formats_to_centimeters() {
        assert_eq!(Point2::new(8.5, 6.25).to_string(), "(8.50, 6.25)");
    }

    fn coord() -> impl Strategy<Value = f64> {
        -1e4..1e4
    }

    proptest! {
        #[test]
        fn distance_symmetry(ax in coord(), ay in coord(), bx in coord(), by in coord()) {
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        }

        #[test]
        fn triangle_inequality(
            ax in coord(), ay in coord(),
            bx in coord(), by in coord(),
            cx in coord(), cy in coord(),
        ) {
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            let c = Point2::new(cx, cy);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-6);
        }

        #[test]
        fn lerp_stays_on_segment(ax in coord(), ay in coord(), bx in coord(), by in coord(), t in 0.0..1.0f64) {
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            let p = a.lerp(b, t);
            // p's distance sum to the endpoints equals the segment length.
            prop_assert!((a.distance(p) + p.distance(b) - a.distance(b)).abs() < 1e-6);
        }
    }
}
