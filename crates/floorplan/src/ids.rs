//! Typed identifiers for floor-plan entities.
//!
//! Every entity class gets its own newtype over a dense `u32` index so that
//! ids from different spaces cannot be confused at compile time and can be
//! used directly as `Vec` indices inside this workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw dense index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index as `usize`, for direct `Vec` indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifier of a [`crate::Room`] within a floor plan.
    RoomId,
    "R"
);
define_id!(
    /// Identifier of a [`crate::Hallway`] within a floor plan.
    HallwayId,
    "H"
);
define_id!(
    /// Identifier of a [`crate::Door`] within a floor plan.
    DoorId,
    "D"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_and_display() {
        let r = RoomId::new(7);
        assert_eq!(r.raw(), 7);
        assert_eq!(r.index(), 7);
        assert_eq!(r.to_string(), "R7");
        assert_eq!(HallwayId::new(2).to_string(), "H2");
        assert_eq!(DoorId::new(0).to_string(), "D0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(RoomId::new(1) < RoomId::new(2));
        let set: HashSet<_> = [RoomId::new(1), RoomId::new(1), RoomId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn from_u32() {
        let h: HallwayId = 3u32.into();
        assert_eq!(h, HallwayId::new(3));
    }
}
