//! Generator for a single-floor shopping mall — one of the paper's
//! motivating indoor venues (§1: "shopping malls, convention centers").
//!
//! Two long parallel promenades joined by cross corridors; large stores
//! line the outer walls and island stores sit between the promenades with
//! doors onto **both** promenades (exercising multi-door rooms, which the
//! office generator does not produce).

use crate::{FloorPlan, FloorPlanBuilder, FloorPlanError};
use ripq_geom::{Point2, Rect};
use serde::{Deserialize, Serialize};

/// Dimensions of the generated mall (meters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MallParams {
    /// Length of the promenades (x extent).
    pub length: f64,
    /// Corridor width (malls are wide: default 4 m).
    pub corridor_width: f64,
    /// Depth of the outer stores.
    pub store_depth: f64,
    /// Number of outer stores along each promenade.
    pub outer_stores_per_side: u32,
    /// Number of cross corridors joining the promenades.
    pub cross_corridors: u32,
}

impl Default for MallParams {
    fn default() -> Self {
        MallParams {
            length: 96.0,
            corridor_width: 4.0,
            store_depth: 8.0,
            outer_stores_per_side: 6,
            cross_corridors: 3,
        }
    }
}

/// Generates the mall floor plan.
///
/// Layout (default parameters), south to north: outer stores, promenade A,
/// island stores, promenade B, outer stores. Cross corridors pierce the
/// island band at uniform x positions; island stores fill the gaps between
/// them, each with a door onto *both* promenades.
pub fn shopping_mall(params: &MallParams) -> Result<FloorPlan, FloorPlanError> {
    let p = params;
    let w = p.corridor_width;
    let d = p.store_depth;
    let island_depth = 12.0f64;

    let mut b = FloorPlanBuilder::new();

    // Promenades.
    let prom_a_y = d; // south promenade starts above the south stores
    let prom_b_y = d + w + island_depth;
    let prom_a = b.add_hallway(Rect::new(0.0, prom_a_y, p.length, w), "promenade-A");
    let prom_b = b.add_hallway(Rect::new(0.0, prom_b_y, p.length, w), "promenade-B");

    // Cross corridors through the island band, at uniform x.
    assert!(p.cross_corridors >= 1, "need at least one cross corridor");
    let slice = p.length / p.cross_corridors as f64;
    let mut cross_spans = Vec::new();
    for i in 0..p.cross_corridors {
        let cx = (i as f64 + 0.5) * slice - w / 2.0;
        b.add_hallway(
            Rect::new(cx, prom_a_y, w, w + island_depth + w),
            format!("cross-{i}"),
        );
        cross_spans.push((cx, cx + w));
    }

    // Outer stores, south of promenade A and north of promenade B.
    let n = p.outer_stores_per_side;
    let store_w = p.length / n as f64;
    for i in 0..n {
        let x = i as f64 * store_w;
        let south = b.add_room(Rect::new(x, 0.0, store_w, d), format!("store-S{i}"));
        b.add_door(Point2::new(x + store_w / 2.0, prom_a_y), south, prom_a);
        let north = b.add_room(
            Rect::new(x, prom_b_y + w, store_w, d),
            format!("store-N{i}"),
        );
        b.add_door(Point2::new(x + store_w / 2.0, prom_b_y + w), north, prom_b);
    }

    // Island stores: fill the gaps of the island band between cross
    // corridors; two doors each (south promenade + north promenade).
    let island_y = prom_a_y + w;
    let mut gaps = Vec::new();
    let mut x0 = 0.0;
    for &(lo, hi) in &cross_spans {
        if lo - x0 > 4.0 {
            gaps.push((x0, lo));
        }
        x0 = hi;
    }
    if p.length - x0 > 4.0 {
        gaps.push((x0, p.length));
    }
    for (i, (lo, hi)) in gaps.into_iter().enumerate() {
        let room = b.add_room(
            Rect::new(lo, island_y, hi - lo, island_depth),
            format!("island-{i}"),
        );
        let mid = (lo + hi) / 2.0;
        b.add_door(Point2::new(mid, island_y), room, prom_a);
        b.add_door(Point2::new(mid, island_y + island_depth), room, prom_b);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Location;

    #[test]
    fn default_mall_is_valid() {
        let plan = shopping_mall(&MallParams::default()).expect("valid mall");
        // 6 + 6 outer stores plus 4 island stores (3 cross corridors make
        // 4 gaps), 2 promenades + 3 cross corridors.
        assert_eq!(plan.rooms().len(), 16);
        assert_eq!(plan.hallways().len(), 5);
    }

    #[test]
    fn island_stores_have_two_doors() {
        let plan = shopping_mall(&MallParams::default()).unwrap();
        let islands: Vec<_> = plan
            .rooms()
            .iter()
            .filter(|r| r.name().starts_with("island"))
            .collect();
        assert_eq!(islands.len(), 4);
        for r in islands {
            assert_eq!(r.doors().len(), 2, "{} needs two doors", r.name());
            // The two doors open onto different promenades.
            let h0 = plan.door(r.doors()[0]).hallway();
            let h1 = plan.door(r.doors()[1]).hallway();
            assert_ne!(h0, h1);
        }
    }

    #[test]
    fn promenades_are_wide() {
        let plan = shopping_mall(&MallParams::default()).unwrap();
        for h in plan.hallways() {
            assert!(h.cross_width() >= 4.0 - 1e-9, "{} too narrow", h.name());
        }
    }

    #[test]
    fn mall_locate_distinguishes_stores_and_promenades() {
        let plan = shopping_mall(&MallParams::default()).unwrap();
        let store = &plan.rooms()[0];
        assert_eq!(plan.locate(store.center()), Location::Room(store.id()));
        let prom = &plan.hallways()[0];
        assert!(matches!(
            plan.locate(prom.footprint().center()),
            Location::Hallway(_)
        ));
    }

    #[test]
    fn custom_mall_scales() {
        let p = MallParams {
            length: 160.0,
            outer_stores_per_side: 10,
            cross_corridors: 4,
            ..Default::default()
        };
        let plan = shopping_mall(&p).expect("valid scaled mall");
        assert_eq!(plan.rooms().len(), 10 + 10 + 5);
        assert_eq!(plan.hallways().len(), 2 + 4);
    }
}
