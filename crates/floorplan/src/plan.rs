//! The validated floor plan and point-location queries on it.

use crate::{Door, DoorId, Hallway, HallwayId, Room, RoomId};
use ripq_geom::{Point2, Rect};
use serde::{Deserialize, Serialize};

/// Which indoor entity a point lies in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// Inside a room.
    Room(RoomId),
    /// Inside a hallway. Points in the overlap of two crossing hallways
    /// resolve to the lowest hallway id.
    Hallway(HallwayId),
    /// Outside every room and hallway (walls, or outside the building).
    Outside,
}

impl Location {
    /// `true` when the location is a room.
    pub fn is_room(&self) -> bool {
        matches!(self, Location::Room(_))
    }

    /// `true` when the location is a hallway.
    pub fn is_hallway(&self) -> bool {
        matches!(self, Location::Hallway(_))
    }
}

/// A validated indoor floor plan.
///
/// Construct through [`crate::FloorPlanBuilder`]; a value of this type is
/// guaranteed to satisfy the invariants listed on the builder (doors on
/// boundaries, no room overlaps, connected hallway network, …).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FloorPlan {
    pub(crate) rooms: Vec<Room>,
    pub(crate) hallways: Vec<Hallway>,
    pub(crate) doors: Vec<Door>,
    pub(crate) bounds: Rect,
}

impl FloorPlan {
    /// All rooms, indexable by [`RoomId::index`].
    #[inline]
    pub fn rooms(&self) -> &[Room] {
        &self.rooms
    }

    /// All hallways, indexable by [`HallwayId::index`].
    #[inline]
    pub fn hallways(&self) -> &[Hallway] {
        &self.hallways
    }

    /// All doors, indexable by [`DoorId::index`].
    #[inline]
    pub fn doors(&self) -> &[Door] {
        &self.doors
    }

    /// Looks up a room by id.
    #[inline]
    pub fn room(&self, id: RoomId) -> &Room {
        &self.rooms[id.index()]
    }

    /// Looks up a hallway by id.
    #[inline]
    pub fn hallway(&self, id: HallwayId) -> &Hallway {
        &self.hallways[id.index()]
    }

    /// Looks up a door by id.
    #[inline]
    pub fn door(&self, id: DoorId) -> &Door {
        &self.doors[id.index()]
    }

    /// Bounding box of the whole plan (used to size query windows as a
    /// percentage of total area, as in §5.2).
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Total indoor area: sum of room areas plus hallway footprint area
    /// (hallway-crossing overlaps counted once).
    pub fn indoor_area(&self) -> f64 {
        let rooms: f64 = self.rooms.iter().map(Room::area).sum();
        let halls: f64 = self.hallways.iter().map(|h| h.footprint().area()).sum();
        // Subtract pairwise hallway overlaps (crossings); hallways in office
        // plans overlap at most pairwise.
        let mut overlap = 0.0;
        for (i, a) in self.hallways.iter().enumerate() {
            for b in &self.hallways[i + 1..] {
                overlap += a.footprint().intersection_area(b.footprint());
            }
        }
        rooms + halls - overlap
    }

    /// Point location: which entity contains `p`?
    ///
    /// Hallways take precedence over rooms (their footprints never overlap
    /// in a validated plan, so this only disambiguates shared boundaries —
    /// a point exactly on a door line counts as hallway).
    pub fn locate(&self, p: Point2) -> Location {
        for h in &self.hallways {
            if h.contains(p) {
                return Location::Hallway(h.id());
            }
        }
        for r in &self.rooms {
            if r.contains(p) {
                return Location::Room(r.id());
            }
        }
        Location::Outside
    }

    /// Doors of a given hallway.
    pub fn doors_of_hallway(&self, h: HallwayId) -> impl Iterator<Item = &Door> + '_ {
        self.doors.iter().filter(move |d| d.hallway() == h)
    }

    /// Pairs of hallways whose footprints overlap (crossings / junctions).
    pub fn hallway_crossings(&self) -> Vec<(HallwayId, HallwayId, Point2)> {
        let mut out = Vec::new();
        for (i, a) in self.hallways.iter().enumerate() {
            for b in &self.hallways[i + 1..] {
                if let Some(ix) = a.footprint().intersection(b.footprint()) {
                    out.push((a.id(), b.id(), ix.center()));
                }
            }
        }
        out
    }

    /// Total hallway centerline length (meters) — used to space reader
    /// deployments uniformly, as in the paper's setup (§5).
    pub fn total_centerline_length(&self) -> f64 {
        self.hallways.iter().map(|h| h.centerline().length()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::office_building;

    #[test]
    fn office_plan_statistics_match_paper() {
        let plan = office_building(&Default::default()).expect("valid plan");
        assert_eq!(plan.rooms().len(), 30, "paper: 30 rooms");
        assert_eq!(plan.hallways().len(), 4, "paper: 4 hallways");
        assert_eq!(plan.doors().len(), 30, "one door per room");
        for room in plan.rooms() {
            assert!(!room.doors().is_empty(), "every room connected by a door");
        }
    }

    #[test]
    fn locate_room_hallway_outside() {
        let plan = office_building(&Default::default()).unwrap();
        let h0 = plan.hallway(HallwayId::new(0));
        let c = h0.footprint().center();
        assert_eq!(plan.locate(c), Location::Hallway(HallwayId::new(0)));

        let r0 = &plan.rooms()[0];
        assert_eq!(plan.locate(r0.center()), Location::Room(r0.id()));

        let outside = Point2::new(plan.bounds().max().x + 10.0, 0.0);
        assert_eq!(plan.locate(outside), Location::Outside);
    }

    #[test]
    fn crossings_exist_between_connector_and_mains() {
        let plan = office_building(&Default::default()).unwrap();
        let crossings = plan.hallway_crossings();
        // The vertical connector crosses each of the three horizontal halls.
        assert_eq!(crossings.len(), 3);
    }

    #[test]
    fn indoor_area_counts_overlaps_once() {
        let plan = office_building(&Default::default()).unwrap();
        let rooms: f64 = plan.rooms().iter().map(Room::area).sum();
        let area = plan.indoor_area();
        assert!(area > rooms, "hallways add area");
        // And the total is less than the raw sum (overlaps removed).
        let raw: f64 = rooms
            + plan
                .hallways()
                .iter()
                .map(|h| h.footprint().area())
                .sum::<f64>();
        assert!(area < raw);
    }

    #[test]
    fn total_centerline_length_positive() {
        let plan = office_building(&Default::default()).unwrap();
        let len = plan.total_centerline_length();
        assert!(len > 100.0, "office building has long hallways, got {len}");
    }
}
