//! Validation errors produced while assembling a floor plan.

use crate::{DoorId, HallwayId, RoomId};
use std::fmt;

/// An inconsistency detected while validating a floor plan.
///
/// [`crate::FloorPlanBuilder::build`] checks the plan's topology up front so
/// that every downstream component (walking-graph construction, reader
/// deployment, simulation) can rely on a well-formed plan and stay
/// panic-free.
#[derive(Debug, Clone, PartialEq)]
pub enum FloorPlanError {
    /// The plan contains no hallway; the walking graph would be empty.
    NoHallways,
    /// A room footprint has zero (or negative) area.
    EmptyRoom(RoomId),
    /// A hallway footprint has zero (or negative) area.
    EmptyHallway(HallwayId),
    /// Two rooms overlap with positive area.
    RoomsOverlap(RoomId, RoomId),
    /// A room and a hallway overlap with positive area.
    RoomOverlapsHallway(RoomId, HallwayId),
    /// A door references a room id that does not exist.
    DanglingDoorRoom(DoorId, RoomId),
    /// A door references a hallway id that does not exist.
    DanglingDoorHallway(DoorId, HallwayId),
    /// A door's position does not lie on the shared boundary of its room
    /// and hallway (within tolerance).
    DoorOffBoundary(DoorId),
    /// A room has no door at all and is therefore unreachable.
    UnreachableRoom(RoomId),
    /// The hallway network is not connected: objects in one hallway could
    /// never be observed walking into another.
    DisconnectedHallways {
        /// A hallway in the main connected component.
        reachable: HallwayId,
        /// A hallway that cannot be reached from it.
        unreachable: HallwayId,
    },
}

impl fmt::Display for FloorPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorPlanError::NoHallways => write!(f, "floor plan has no hallways"),
            FloorPlanError::EmptyRoom(r) => write!(f, "room {r} has an empty footprint"),
            FloorPlanError::EmptyHallway(h) => write!(f, "hallway {h} has an empty footprint"),
            FloorPlanError::RoomsOverlap(a, b) => write!(f, "rooms {a} and {b} overlap"),
            FloorPlanError::RoomOverlapsHallway(r, h) => {
                write!(f, "room {r} overlaps hallway {h}")
            }
            FloorPlanError::DanglingDoorRoom(d, r) => {
                write!(f, "door {d} references unknown room {r}")
            }
            FloorPlanError::DanglingDoorHallway(d, h) => {
                write!(f, "door {d} references unknown hallway {h}")
            }
            FloorPlanError::DoorOffBoundary(d) => {
                write!(f, "door {d} is not on the room/hallway shared boundary")
            }
            FloorPlanError::UnreachableRoom(r) => write!(f, "room {r} has no door"),
            FloorPlanError::DisconnectedHallways {
                reachable,
                unreachable,
            } => write!(
                f,
                "hallway {unreachable} is not connected to hallway {reachable}"
            ),
        }
    }
}

impl std::error::Error for FloorPlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FloorPlanError::RoomsOverlap(RoomId::new(1), RoomId::new(2));
        assert_eq!(e.to_string(), "rooms R1 and R2 overlap");
        let e = FloorPlanError::DisconnectedHallways {
            reachable: HallwayId::new(0),
            unreachable: HallwayId::new(3),
        };
        assert!(e.to_string().contains("H3"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&FloorPlanError::NoHallways);
    }
}
