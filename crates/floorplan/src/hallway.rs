//! Hallways: reader-instrumented corridors with a centerline abstraction.

use crate::HallwayId;
use ripq_geom::{Point2, Rect, Segment};
use serde::{Deserialize, Serialize};

/// Orientation of a hallway's long axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// The hallway runs along the x axis.
    Horizontal,
    /// The hallway runs along the y axis.
    Vertical,
}

/// A rectangular corridor.
///
/// The paper assumes "the width of hallways can be fully covered by the
/// detection range of sensing devices … In this case the hallways can simply
/// be modelled as lines" (§4.2). [`Hallway::centerline`] is that line: the
/// axis-aligned segment through the middle of the footprint along its long
/// axis. RFID readers sit on it and the walking graph runs along it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hallway {
    id: HallwayId,
    footprint: Rect,
    name: String,
}

impl Hallway {
    /// Creates a hallway with a given footprint.
    pub fn new(id: HallwayId, footprint: Rect, name: impl Into<String>) -> Self {
        Hallway {
            id,
            footprint,
            name: name.into(),
        }
    }

    /// This hallway's identifier.
    #[inline]
    pub fn id(&self) -> HallwayId {
        self.id
    }

    /// Human-readable name (e.g. `"H-north"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rectangular footprint.
    #[inline]
    pub fn footprint(&self) -> &Rect {
        &self.footprint
    }

    /// Orientation of the long axis (ties resolve to horizontal).
    pub fn axis(&self) -> Axis {
        if self.footprint.width() >= self.footprint.height() {
            Axis::Horizontal
        } else {
            Axis::Vertical
        }
    }

    /// Width of the corridor *across* its long axis — the `w_h` of the
    /// paper's range-query width-ratio compensation (Algorithm 3, Fig. 6).
    pub fn cross_width(&self) -> f64 {
        match self.axis() {
            Axis::Horizontal => self.footprint.height(),
            Axis::Vertical => self.footprint.width(),
        }
    }

    /// Length of the corridor along its long axis.
    pub fn long_length(&self) -> f64 {
        match self.axis() {
            Axis::Horizontal => self.footprint.width(),
            Axis::Vertical => self.footprint.height(),
        }
    }

    /// The centerline segment through the middle of the footprint.
    pub fn centerline(&self) -> Segment {
        let c = self.footprint.center();
        match self.axis() {
            Axis::Horizontal => Segment::new(
                Point2::new(self.footprint.min().x, c.y),
                Point2::new(self.footprint.max().x, c.y),
            ),
            Axis::Vertical => Segment::new(
                Point2::new(c.x, self.footprint.min().y),
                Point2::new(c.x, self.footprint.max().y),
            ),
        }
    }

    /// Projects an arbitrary point onto the centerline.
    pub fn project_to_centerline(&self, p: Point2) -> Point2 {
        self.centerline().closest_point(p)
    }

    /// Returns `true` when `p` lies within the footprint.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        self.footprint.contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizontal() -> Hallway {
        // 50 m x 2 m corridor at y ∈ [9, 11].
        Hallway::new(HallwayId::new(0), Rect::new(0.0, 9.0, 50.0, 2.0), "H0")
    }

    fn vertical() -> Hallway {
        Hallway::new(HallwayId::new(1), Rect::new(30.0, 9.0, 2.0, 42.0), "H1")
    }

    #[test]
    fn axis_detection() {
        assert_eq!(horizontal().axis(), Axis::Horizontal);
        assert_eq!(vertical().axis(), Axis::Vertical);
        // Square footprint defaults to horizontal.
        let sq = Hallway::new(HallwayId::new(2), Rect::new(0.0, 0.0, 2.0, 2.0), "sq");
        assert_eq!(sq.axis(), Axis::Horizontal);
    }

    #[test]
    fn cross_width_and_length() {
        assert_eq!(horizontal().cross_width(), 2.0);
        assert_eq!(horizontal().long_length(), 50.0);
        assert_eq!(vertical().cross_width(), 2.0);
        assert_eq!(vertical().long_length(), 42.0);
    }

    #[test]
    fn centerline_runs_through_middle() {
        let h = horizontal();
        let cl = h.centerline();
        assert_eq!(cl.a, Point2::new(0.0, 10.0));
        assert_eq!(cl.b, Point2::new(50.0, 10.0));

        let v = vertical();
        let cl = v.centerline();
        assert_eq!(cl.a, Point2::new(31.0, 9.0));
        assert_eq!(cl.b, Point2::new(31.0, 51.0));
    }

    #[test]
    fn projection_lands_on_centerline() {
        let h = horizontal();
        let p = h.project_to_centerline(Point2::new(12.3, 9.2));
        assert!(p.approx_eq(Point2::new(12.3, 10.0)));
        // Beyond the end: clamped.
        let p = h.project_to_centerline(Point2::new(60.0, 10.5));
        assert!(p.approx_eq(Point2::new(50.0, 10.0)));
    }

    #[test]
    fn containment_uses_footprint() {
        let h = horizontal();
        assert!(h.contains(Point2::new(25.0, 10.9)));
        assert!(!h.contains(Point2::new(25.0, 11.1)));
    }
}
