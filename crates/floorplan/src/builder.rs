//! Fluent construction and validation of floor plans.

use crate::{Door, DoorId, FloorPlan, FloorPlanError, Hallway, HallwayId, Room, RoomId};
use ripq_geom::{Point2, Rect};

/// Positional tolerance for "door sits on the shared boundary" checks.
const DOOR_TOLERANCE: f64 = 1e-6;

/// Builder assembling a [`FloorPlan`] and validating its topology.
///
/// Invariants enforced by [`FloorPlanBuilder::build`]:
///
/// 1. at least one hallway exists;
/// 2. every room / hallway footprint has positive area;
/// 3. room footprints are pairwise interior-disjoint, and disjoint from
///    every hallway footprint (hallways *may* overlap each other — that is
///    a crossing);
/// 4. every door references existing entities and lies on the boundary of
///    both its room and its hallway;
/// 5. every room has at least one door;
/// 6. the hallway network (hallways as vertices, footprint overlaps as
///    edges) is connected.
#[derive(Debug, Default)]
pub struct FloorPlanBuilder {
    rooms: Vec<Room>,
    hallways: Vec<Hallway>,
    doors: Vec<Door>,
}

impl FloorPlanBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a room and returns its id.
    pub fn add_room(&mut self, footprint: Rect, name: impl Into<String>) -> RoomId {
        let id = RoomId::new(self.rooms.len() as u32);
        self.rooms.push(Room::new(id, footprint, name));
        id
    }

    /// Adds a hallway and returns its id.
    pub fn add_hallway(&mut self, footprint: Rect, name: impl Into<String>) -> HallwayId {
        let id = HallwayId::new(self.hallways.len() as u32);
        self.hallways.push(Hallway::new(id, footprint, name));
        id
    }

    /// Adds a door at `position` connecting `room` and `hallway`.
    pub fn add_door(&mut self, position: Point2, room: RoomId, hallway: HallwayId) -> DoorId {
        let id = DoorId::new(self.doors.len() as u32);
        self.doors.push(Door::new(id, position, room, hallway));
        id
    }

    /// Convenience: adds a door at the midpoint of the shared boundary of
    /// `room` and `hallway`. Returns `None` when the footprints share no
    /// boundary.
    pub fn add_door_between(&mut self, room: RoomId, hallway: HallwayId) -> Option<DoorId> {
        let r = self.rooms.get(room.index())?.footprint().inflate(1e-9);
        let h = self.hallways.get(hallway.index())?.footprint();
        let shared = r.intersection(h)?;
        Some(self.add_door(shared.center(), room, hallway))
    }

    /// Validates the plan and produces the immutable [`FloorPlan`].
    pub fn build(mut self) -> Result<FloorPlan, FloorPlanError> {
        if self.hallways.is_empty() {
            return Err(FloorPlanError::NoHallways);
        }
        for r in &self.rooms {
            if r.footprint().area() <= 0.0 {
                return Err(FloorPlanError::EmptyRoom(r.id()));
            }
        }
        for h in &self.hallways {
            if h.footprint().area() <= 0.0 {
                return Err(FloorPlanError::EmptyHallway(h.id()));
            }
        }
        // Interior disjointness: positive-area overlap is an error; touching
        // boundaries are fine.
        for (i, a) in self.rooms.iter().enumerate() {
            for b in &self.rooms[i + 1..] {
                if a.footprint().intersection_area(b.footprint()) > DOOR_TOLERANCE {
                    return Err(FloorPlanError::RoomsOverlap(a.id(), b.id()));
                }
            }
        }
        for r in &self.rooms {
            for h in &self.hallways {
                if r.footprint().intersection_area(h.footprint()) > DOOR_TOLERANCE {
                    return Err(FloorPlanError::RoomOverlapsHallway(r.id(), h.id()));
                }
            }
        }
        // Door validity.
        for d in &self.doors {
            let room = self
                .rooms
                .get(d.room().index())
                .ok_or(FloorPlanError::DanglingDoorRoom(d.id(), d.room()))?;
            let hall = self
                .hallways
                .get(d.hallway().index())
                .ok_or(FloorPlanError::DanglingDoorHallway(d.id(), d.hallway()))?;
            let on_room = room.footprint().distance_to_point(d.position()) <= DOOR_TOLERANCE;
            let on_hall = hall.footprint().distance_to_point(d.position()) <= DOOR_TOLERANCE;
            if !(on_room && on_hall) {
                return Err(FloorPlanError::DoorOffBoundary(d.id()));
            }
        }
        // Attach doors to rooms; every room needs one.
        let door_list: Vec<(DoorId, RoomId)> =
            self.doors.iter().map(|d| (d.id(), d.room())).collect();
        for (did, rid) in door_list {
            self.rooms[rid.index()].push_door(did);
        }
        for r in &self.rooms {
            if r.doors().is_empty() {
                return Err(FloorPlanError::UnreachableRoom(r.id()));
            }
        }
        // Hallway connectivity via footprint overlaps (BFS).
        let n = self.hallways.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            let reachable: Vec<usize> = (0..n)
                .filter(|&j| {
                    !seen[j]
                        && self.hallways[i]
                            .footprint()
                            .intersects(self.hallways[j].footprint())
                })
                .collect();
            for j in reachable {
                seen[j] = true;
                stack.push(j);
            }
        }
        if let Some(j) = seen.iter().position(|s| !s) {
            return Err(FloorPlanError::DisconnectedHallways {
                reachable: HallwayId::new(0),
                unreachable: HallwayId::new(j as u32),
            });
        }

        // Bounds = union of all footprints.
        let mut bounds = *self.hallways[0].footprint();
        for h in &self.hallways {
            bounds = bounds.union(h.footprint());
        }
        for r in &self.rooms {
            bounds = bounds.union(r.footprint());
        }

        Ok(FloorPlan {
            rooms: self.rooms,
            hallways: self.hallways,
            doors: self.doors,
            bounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One hallway at y ∈ [9,11], one room below it with a door at (5, 9).
    fn simple_builder() -> (FloorPlanBuilder, RoomId, HallwayId) {
        let mut b = FloorPlanBuilder::new();
        let h = b.add_hallway(Rect::new(0.0, 9.0, 20.0, 2.0), "H0");
        let r = b.add_room(Rect::new(0.0, 1.0, 10.0, 8.0), "R0");
        (b, r, h)
    }

    #[test]
    fn valid_minimal_plan() {
        let (mut b, r, h) = simple_builder();
        b.add_door(Point2::new(5.0, 9.0), r, h);
        let plan = b.build().expect("valid");
        assert_eq!(plan.rooms().len(), 1);
        assert_eq!(plan.room(r).doors().len(), 1);
        assert_eq!(plan.bounds(), Rect::new(0.0, 1.0, 20.0, 10.0));
    }

    #[test]
    fn no_hallways_rejected() {
        let b = FloorPlanBuilder::new();
        assert_eq!(b.build().unwrap_err(), FloorPlanError::NoHallways);
    }

    #[test]
    fn empty_room_rejected() {
        let mut b = FloorPlanBuilder::new();
        b.add_hallway(Rect::new(0.0, 0.0, 10.0, 2.0), "H0");
        let r = b.add_room(Rect::new(0.0, 2.0, 0.0, 5.0), "empty");
        assert_eq!(b.build().unwrap_err(), FloorPlanError::EmptyRoom(r));
    }

    #[test]
    fn overlapping_rooms_rejected() {
        let mut b = FloorPlanBuilder::new();
        let h = b.add_hallway(Rect::new(0.0, 9.0, 20.0, 2.0), "H0");
        let r1 = b.add_room(Rect::new(0.0, 1.0, 10.0, 8.0), "R0");
        let r2 = b.add_room(Rect::new(5.0, 1.0, 10.0, 8.0), "R1");
        b.add_door(Point2::new(5.0, 9.0), r1, h);
        b.add_door(Point2::new(12.0, 9.0), r2, h);
        assert_eq!(b.build().unwrap_err(), FloorPlanError::RoomsOverlap(r1, r2));
    }

    #[test]
    fn touching_rooms_allowed() {
        let mut b = FloorPlanBuilder::new();
        let h = b.add_hallway(Rect::new(0.0, 9.0, 20.0, 2.0), "H0");
        let r1 = b.add_room(Rect::new(0.0, 1.0, 10.0, 8.0), "R0");
        let r2 = b.add_room(Rect::new(10.0, 1.0, 10.0, 8.0), "R1");
        b.add_door(Point2::new(5.0, 9.0), r1, h);
        b.add_door(Point2::new(15.0, 9.0), r2, h);
        assert!(b.build().is_ok());
    }

    #[test]
    fn room_overlapping_hallway_rejected() {
        let mut b = FloorPlanBuilder::new();
        let h = b.add_hallway(Rect::new(0.0, 9.0, 20.0, 2.0), "H0");
        let r = b.add_room(Rect::new(0.0, 5.0, 10.0, 5.0), "R0"); // pokes into hallway
        b.add_door(Point2::new(5.0, 9.0), r, h);
        assert_eq!(
            b.build().unwrap_err(),
            FloorPlanError::RoomOverlapsHallway(r, h)
        );
    }

    #[test]
    fn door_off_boundary_rejected() {
        let (mut b, r, h) = simple_builder();
        let d = b.add_door(Point2::new(5.0, 5.0), r, h); // inside the room, not on hallway
        assert_eq!(b.build().unwrap_err(), FloorPlanError::DoorOffBoundary(d));
    }

    #[test]
    fn dangling_door_room_rejected() {
        let (mut b, _r, h) = simple_builder();
        let bogus = RoomId::new(42);
        let d = b.add_door(Point2::new(5.0, 9.0), bogus, h);
        assert_eq!(
            b.build().unwrap_err(),
            FloorPlanError::DanglingDoorRoom(d, bogus)
        );
    }

    #[test]
    fn room_without_door_rejected() {
        let (b, r, _h) = simple_builder();
        assert_eq!(b.build().unwrap_err(), FloorPlanError::UnreachableRoom(r));
    }

    #[test]
    fn disconnected_hallways_rejected() {
        let mut b = FloorPlanBuilder::new();
        b.add_hallway(Rect::new(0.0, 0.0, 10.0, 2.0), "H0");
        let h1 = b.add_hallway(Rect::new(0.0, 20.0, 10.0, 2.0), "H1");
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            FloorPlanError::DisconnectedHallways {
                reachable: HallwayId::new(0),
                unreachable: h1,
            }
        );
    }

    #[test]
    fn add_door_between_uses_shared_boundary() {
        let (mut b, r, h) = simple_builder();
        let d = b.add_door_between(r, h).expect("shared boundary exists");
        let plan = b.build().expect("valid");
        let door = plan.door(d);
        // Midpoint of the shared boundary segment [0,10] × {9}.
        assert!(door.position().approx_eq(Point2::new(5.0, 9.0)));
    }

    #[test]
    fn add_door_between_disjoint_returns_none() {
        let mut b = FloorPlanBuilder::new();
        let h = b.add_hallway(Rect::new(0.0, 9.0, 20.0, 2.0), "H0");
        let r = b.add_room(Rect::new(0.0, 20.0, 5.0, 5.0), "far");
        assert!(b.add_door_between(r, h).is_none());
    }
}
