//! Rooms: reader-free rectangular spaces reachable through doors.

use crate::{DoorId, RoomId};
use ripq_geom::{Point2, Rect};
use serde::{Deserialize, Serialize};

/// A rectangular room.
///
/// No RFID readers are deployed inside rooms (privacy, §1/§2.2), so "the
/// resolution of location inferences cannot be higher than a single room"
/// (§4.2). Objects inside a room are treated as uniformly distributed over
/// its area by the range-query evaluation (Algorithm 3's area-ratio
/// compensation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Room {
    id: RoomId,
    footprint: Rect,
    name: String,
    doors: Vec<DoorId>,
}

impl Room {
    /// Creates a room. Door ids are attached later by the builder.
    pub fn new(id: RoomId, footprint: Rect, name: impl Into<String>) -> Self {
        Room {
            id,
            footprint,
            name: name.into(),
            doors: Vec::new(),
        }
    }

    /// This room's identifier.
    #[inline]
    pub fn id(&self) -> RoomId {
        self.id
    }

    /// Human-readable name (e.g. `"R203"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rectangular footprint.
    #[inline]
    pub fn footprint(&self) -> &Rect {
        &self.footprint
    }

    /// Floor area in square meters — the `Area_{R}` of Algorithm 3.
    #[inline]
    pub fn area(&self) -> f64 {
        self.footprint.area()
    }

    /// Geometric center; the walking graph places the room's node here.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.footprint.center()
    }

    /// Doors of this room (at least one in a validated plan).
    #[inline]
    pub fn doors(&self) -> &[DoorId] {
        &self.doors
    }

    /// Returns `true` when `p` lies within the footprint.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        self.footprint.contains(p)
    }

    pub(crate) fn push_door(&mut self, d: DoorId) {
        self.doors.push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let mut room = Room::new(RoomId::new(3), Rect::new(0.0, 0.0, 10.0, 8.0), "R3");
        assert_eq!(room.id(), RoomId::new(3));
        assert_eq!(room.name(), "R3");
        assert_eq!(room.area(), 80.0);
        assert_eq!(room.center(), Point2::new(5.0, 4.0));
        assert!(room.doors().is_empty());
        room.push_door(DoorId::new(0));
        room.push_door(DoorId::new(5));
        assert_eq!(room.doors(), &[DoorId::new(0), DoorId::new(5)]);
    }

    #[test]
    fn containment() {
        let room = Room::new(RoomId::new(0), Rect::new(2.0, 2.0, 4.0, 4.0), "r");
        assert!(room.contains(Point2::new(3.0, 3.0)));
        assert!(room.contains(Point2::new(2.0, 2.0))); // boundary
        assert!(!room.contains(Point2::new(6.5, 3.0)));
    }
}
