//! Generator for the paper's experimental office building.
//!
//! §5 of the paper: "The settings of our experiment validation include 30
//! rooms and 4 hallways on a single floor, in which all rooms are connected
//! to one or more hallways by doors." The concrete geometry is not given, so
//! we generate a deterministic plan with those cardinalities: three parallel
//! horizontal hallways joined by one vertical connector, each horizontal
//! hallway lined with rooms on both sides.

use crate::{FloorPlan, FloorPlanBuilder, FloorPlanError};
use ripq_geom::{Point2, Rect};
use serde::{Deserialize, Serialize};

/// Dimensions of the generated office building (all meters).
///
/// The default values reproduce the paper's setting: 3 horizontal hallways
/// × (3 + 2) room columns × 2 sides = **30 rooms**, plus the vertical
/// connector = **4 hallways**.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfficeParams {
    /// Length of each horizontal hallway (x extent of the building).
    pub hallway_length: f64,
    /// Corridor width. The paper assumes reader activation ranges cover it.
    pub hallway_width: f64,
    /// Depth of every room (distance from hallway wall to back wall).
    pub room_depth: f64,
    /// Structural gap between back-to-back room rows.
    pub wall_gap: f64,
    /// Bottom/left margin before the first room row.
    pub margin: f64,
    /// x position where the vertical connector's left wall sits.
    pub connector_x: f64,
    /// Number of room columns left of the connector.
    pub left_cols: u32,
    /// Number of room columns right of the connector.
    pub right_cols: u32,
    /// Number of horizontal hallways.
    pub horizontal_hallways: u32,
}

impl Default for OfficeParams {
    fn default() -> Self {
        OfficeParams {
            hallway_length: 62.0,
            hallway_width: 2.0,
            room_depth: 8.0,
            wall_gap: 2.0,
            margin: 1.0,
            connector_x: 30.0,
            left_cols: 3,
            right_cols: 2,
            horizontal_hallways: 3,
        }
    }
}

impl OfficeParams {
    /// Total number of rooms the plan will contain.
    pub fn room_count(&self) -> u32 {
        (self.left_cols + self.right_cols) * 2 * self.horizontal_hallways
    }

    /// Total number of hallways (horizontal + one vertical connector).
    pub fn hallway_count(&self) -> u32 {
        self.horizontal_hallways + 1
    }
}

/// Generates the office-building floor plan described by `params`.
///
/// With default parameters this is the paper's 30-room / 4-hallway single
/// floor. The plan is deterministic: identical parameters always produce an
/// identical plan, which keeps every experiment reproducible.
pub fn office_building(params: &OfficeParams) -> Result<FloorPlan, FloorPlanError> {
    let mut b = FloorPlanBuilder::new();
    add_office_floor(&mut b, params, 0.0, "");
    b.build()
}

/// Adds one office floor's hallways, rooms and doors to `builder` at
/// vertical offset `y0`, prefixing entity names with `prefix`. Returns the
/// y extents of the bottom and top horizontal hallways (used by the
/// multi-floor generator to route stairwells).
///
/// The connector hallway's x span is `[connector_x, connector_x +
/// hallway_width]` regardless of the offset, so stacked floors share
/// stairwell alignment.
pub(crate) fn add_office_floor(
    b: &mut FloorPlanBuilder,
    p: &OfficeParams,
    y0: f64,
    prefix: &str,
) -> (f64, f64) {
    let w = p.hallway_width;
    let d = p.room_depth;
    let g = p.wall_gap;
    let m = p.margin;

    // Horizontal hallways: hallway k's footprint starts at
    // y = y0 + m + d + k (2d + w + g).
    let hall_y = |k: u32| y0 + m + d + k as f64 * (2.0 * d + w + g);
    let mut horizontal = Vec::new();
    for k in 0..p.horizontal_hallways {
        let id = b.add_hallway(
            Rect::new(0.0, hall_y(k), p.hallway_length, w),
            format!("{prefix}H{k}"),
        );
        horizontal.push(id);
    }
    // Vertical connector spanning from the bottom hallway to the top one.
    let connector_span = hall_y(p.horizontal_hallways - 1) + w - hall_y(0);
    b.add_hallway(
        Rect::new(p.connector_x, hall_y(0), w, connector_span),
        format!("{prefix}H-connector"),
    );

    // Room columns: `left_cols` equal columns in [0, connector_x] and
    // `right_cols` equal columns in [connector_x + w, hallway_length].
    let mut columns = Vec::new();
    let left_w = p.connector_x / p.left_cols as f64;
    for c in 0..p.left_cols {
        columns.push((c as f64 * left_w, left_w));
    }
    let right_start = p.connector_x + w;
    let right_w = (p.hallway_length - right_start) / p.right_cols as f64;
    for c in 0..p.right_cols {
        columns.push((right_start + c as f64 * right_w, right_w));
    }

    // Two room rows per horizontal hallway: below (door on the room's top
    // edge) and above (door on the room's bottom edge).
    let mut room_no = 0u32;
    for k in 0..p.horizontal_hallways {
        let hy = hall_y(k);
        for (row_y, door_y, side) in [(hy - d, hy, "s"), (hy + w, hy + w, "n")] {
            for &(cx, cw) in &columns {
                let room = b.add_room(
                    Rect::new(cx, row_y, cw, d),
                    format!("{prefix}R{room_no}{side}"),
                );
                b.add_door(
                    Point2::new(cx + cw * 0.5, door_y),
                    room,
                    horizontal[k as usize],
                );
                room_no += 1;
            }
        }
    }

    (hall_y(0), hall_y(p.horizontal_hallways - 1) + w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Location;

    #[test]
    fn default_params_give_paper_cardinalities() {
        let p = OfficeParams::default();
        assert_eq!(p.room_count(), 30);
        assert_eq!(p.hallway_count(), 4);
        let plan = office_building(&p).expect("valid default plan");
        assert_eq!(plan.rooms().len(), 30);
        assert_eq!(plan.hallways().len(), 4);
    }

    #[test]
    fn every_door_on_its_hallway() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        for door in plan.doors() {
            let hall = plan.hallway(door.hallway());
            assert!(
                hall.footprint().distance_to_point(door.position()) < 1e-9,
                "door {} not on hallway {}",
                door.id(),
                hall.id()
            );
        }
    }

    #[test]
    fn scaled_plan_also_valid() {
        let p = OfficeParams {
            hallway_length: 100.0,
            left_cols: 4,
            right_cols: 4,
            horizontal_hallways: 4,
            connector_x: 49.0,
            ..Default::default()
        };
        assert_eq!(p.room_count(), 64);
        let plan = office_building(&p).expect("scaled plan valid");
        assert_eq!(plan.rooms().len(), 64);
        assert_eq!(plan.hallways().len(), 5);
    }

    #[test]
    fn connector_crosses_every_horizontal_hallway() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        assert_eq!(plan.hallway_crossings().len(), 3);
    }

    #[test]
    fn room_centers_locate_inside_their_room() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        for room in plan.rooms() {
            assert_eq!(plan.locate(room.center()), Location::Room(room.id()));
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = office_building(&OfficeParams::default()).unwrap();
        let b = office_building(&OfficeParams::default()).unwrap();
        assert_eq!(a.bounds(), b.bounds());
        for (ra, rb) in a.rooms().iter().zip(b.rooms()) {
            assert_eq!(ra.footprint(), rb.footprint());
        }
    }
}
