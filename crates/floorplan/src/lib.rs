//! # ripq-floorplan — indoor floor plan model for RIPQ
//!
//! The EDBT 2013 paper evaluates its system in "a typical office building"
//! with rooms connected to hallways by doors (§4.2, §5). This crate models
//! exactly that class of floor plan:
//!
//! * [`Hallway`] — an axis-aligned rectangular corridor whose centerline
//!   carries all RFID readers and most of the walking graph;
//! * [`Room`] — an axis-aligned rectangular room adjacent to one or more
//!   hallways;
//! * [`Door`] — a point on the shared boundary of a room and a hallway;
//! * [`FloorPlan`] — the validated collection, with point-location queries.
//!
//! Plans are constructed through [`FloorPlanBuilder`], which validates the
//! topology (doors actually sit on shared boundaries, rooms do not overlap
//! hallways, every room has a door, …) and returns typed
//! [`FloorPlanError`]s instead of panicking.
//!
//! [`office_building`] generates the paper's experimental environment: a
//! single floor with **30 rooms and 4 hallways** where "all rooms are
//! connected to one or more hallways by doors" (§5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Further generators for the paper's other motivating venues:
//! [`shopping_mall`] and [`subway_station`].

mod builder;
mod door;
mod error;
mod hallway;
mod ids;
mod mall;
mod multifloor;
mod office;
mod plan;
mod room;
mod subway;

pub use builder::FloorPlanBuilder;
pub use door::Door;
pub use error::FloorPlanError;
pub use hallway::{Axis, Hallway};
pub use ids::{DoorId, HallwayId, RoomId};
pub use mall::{shopping_mall, MallParams};
pub use multifloor::{multi_floor_office, MultiFloorParams};
pub use office::{office_building, OfficeParams};
pub use plan::{FloorPlan, Location};
pub use room::Room;
pub use subway::{subway_station, SubwayParams};
