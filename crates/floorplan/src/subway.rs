//! Generator for a subway station — the paper's opening example of a large
//! indoor space (§1 cites the New York City Subway's 468 stations).
//!
//! One island platform below a concourse, joined by stair corridors; shops
//! and ticket offices on the concourse, service rooms at platform level.

use crate::{FloorPlan, FloorPlanBuilder, FloorPlanError};
use ripq_geom::{Point2, Rect};
use serde::{Deserialize, Serialize};

/// Dimensions of the generated station (meters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubwayParams {
    /// Platform / concourse length.
    pub length: f64,
    /// Platform width.
    pub platform_width: f64,
    /// Concourse width.
    pub concourse_width: f64,
    /// Number of stair corridors between platform and concourse.
    pub stairs: u32,
    /// Number of shops lining the concourse.
    pub shops: u32,
}

impl Default for SubwayParams {
    fn default() -> Self {
        SubwayParams {
            length: 120.0,
            platform_width: 6.0,
            concourse_width: 6.0,
            stairs: 3,
            shops: 6,
        }
    }
}

/// Generates the subway-station floor plan.
///
/// Vertical layout (south → north): platform, mezzanine gap pierced by the
/// stairs, concourse, shop row. Two ticket offices flank the mezzanine
/// band; two service rooms sit at platform level between stairs.
pub fn subway_station(params: &SubwayParams) -> Result<FloorPlan, FloorPlanError> {
    let p = params;
    assert!(p.stairs >= 1, "a station needs stairs");
    let mezz = 14.0f64; // vertical gap between platform and concourse
    let plat_y = 0.0;
    let conc_y = plat_y + p.platform_width + mezz;
    let shop_y = conc_y + p.concourse_width;
    let shop_depth = 8.0;

    let mut b = FloorPlanBuilder::new();
    let platform = b.add_hallway(
        Rect::new(0.0, plat_y, p.length, p.platform_width),
        "platform",
    );
    let concourse = b.add_hallway(
        Rect::new(0.0, conc_y, p.length, p.concourse_width),
        "concourse",
    );

    // Stairs pierce the mezzanine at uniform x.
    let stair_w = 4.0;
    let slice = p.length / p.stairs as f64;
    let mut stair_spans = Vec::new();
    for i in 0..p.stairs {
        let sx = (i as f64 + 0.5) * slice - stair_w / 2.0;
        b.add_hallway(
            Rect::new(sx, plat_y + p.platform_width, stair_w, mezz)
                // Overlap both halls slightly so the network connects.
                .union(&Rect::new(
                    sx,
                    plat_y + p.platform_width - 1.0,
                    stair_w,
                    1.0,
                ))
                .union(&Rect::new(sx, conc_y, stair_w, 1.0)),
            format!("stairs-{i}"),
        );
        stair_spans.push((sx, sx + stair_w));
    }

    // Shops above the concourse.
    let shop_w = p.length / p.shops as f64;
    for i in 0..p.shops {
        let x = i as f64 * shop_w;
        let shop = b.add_room(
            Rect::new(x, shop_y, shop_w, shop_depth),
            format!("shop-{i}"),
        );
        b.add_door(Point2::new(x + shop_w / 2.0, shop_y), shop, concourse);
    }

    // Ticket offices at mezzanine level, flanking the stairs (doors onto
    // the concourse's south edge).
    let office_depth = 8.0;
    let office_y = conc_y - office_depth;
    let left = b.add_room(Rect::new(0.0, office_y, 14.0, office_depth), "tickets-W");
    b.add_door(Point2::new(7.0, conc_y), left, concourse);
    let right = b.add_room(
        Rect::new(p.length - 14.0, office_y, 14.0, office_depth),
        "tickets-E",
    );
    b.add_door(Point2::new(p.length - 7.0, conc_y), right, concourse);

    // Service rooms at platform level, in the mezzanine gaps between
    // stairs (doors down onto the platform).
    let service_y = plat_y + p.platform_width;
    let mut placed = 0;
    let mut x0 = 16.0; // keep clear of the ticket offices' x-extent shadow
    for &(lo, _) in &stair_spans {
        let hi = lo - 2.0;
        if hi - x0 >= 10.0 && placed < 2 {
            let room = b.add_room(
                Rect::new(x0, service_y, 10.0, 6.0),
                format!("service-{placed}"),
            );
            b.add_door(Point2::new(x0 + 5.0, service_y), room, platform);
            placed += 1;
        }
        x0 = lo + stair_w + 2.0;
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_station_is_valid() {
        let plan = subway_station(&SubwayParams::default()).expect("valid station");
        // 6 shops + 2 ticket offices + up to 2 service rooms.
        assert!(plan.rooms().len() >= 9, "rooms: {}", plan.rooms().len());
        // Platform + concourse + 3 stairs.
        assert_eq!(plan.hallways().len(), 5);
    }

    #[test]
    fn platform_reaches_concourse() {
        use crate::HallwayId;
        let plan = subway_station(&SubwayParams::default()).unwrap();
        // Validated plans have a connected hallway network; additionally
        // check the stairs really overlap both halls.
        let platform = plan.hallway(HallwayId::new(0));
        let concourse = plan.hallway(HallwayId::new(1));
        let stair = plan.hallway(HallwayId::new(2));
        assert!(stair.footprint().intersects(platform.footprint()));
        assert!(stair.footprint().intersects(concourse.footprint()));
    }

    #[test]
    fn every_room_reachable() {
        let plan = subway_station(&SubwayParams::default()).unwrap();
        for r in plan.rooms() {
            assert!(!r.doors().is_empty(), "{} unreachable", r.name());
        }
    }

    #[test]
    fn bigger_station_scales() {
        let p = SubwayParams {
            length: 200.0,
            stairs: 5,
            shops: 10,
            ..Default::default()
        };
        let plan = subway_station(&p).expect("valid big station");
        assert_eq!(plan.hallways().len(), 7);
        assert!(plan.rooms().len() >= 12);
    }
}
