//! Multi-floor office buildings in "unrolled" coordinates.
//!
//! The paper's symbolic-model example (Fig. 2) features a staircase as a
//! first-class cell; this generator brings staircases to RIPQ. Floors are
//! laid out side by side along the y axis ("unrolled" — floor `k` occupies
//! the band `[k·pitch, k·pitch + floor_height]`), and each stairwell is a
//! vertical hallway bridging the top hallway of one floor to the bottom
//! hallway of the next. Because the result is an ordinary (large, valid)
//! [`FloorPlan`], every downstream component — walking graph, anchors,
//! readers, particle filter, simulator — works on it unchanged, and the
//! walking distance through a stairwell naturally models the extra meters
//! stairs cost.

use crate::office::add_office_floor;
use crate::{FloorPlan, FloorPlanBuilder, FloorPlanError, OfficeParams, RoomId};
use ripq_geom::Rect;
use serde::{Deserialize, Serialize};

/// Dimensions of the generated multi-floor building.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiFloorParams {
    /// Per-floor layout.
    pub floor: OfficeParams,
    /// Number of floors (≥ 1).
    pub floors: u32,
    /// Walking length of a stairwell beyond the vertical gap (stairs are
    /// longer than the straight-line distance; extra meters are added by
    /// widening the inter-floor gap in unrolled space).
    pub stair_gap: f64,
}

impl Default for MultiFloorParams {
    fn default() -> Self {
        MultiFloorParams {
            floor: OfficeParams::default(),
            floors: 3,
            stair_gap: 6.0,
        }
    }
}

impl MultiFloorParams {
    /// Height of one floor band in unrolled coordinates.
    pub fn floor_height(&self) -> f64 {
        let p = &self.floor;
        // Mirror of the office generator's vertical layout: margin + first
        // room row + per-hallway pitch + final room row + margin.
        2.0 * p.margin
            + p.room_depth
            + p.horizontal_hallways as f64 * (2.0 * p.room_depth + p.hallway_width + p.wall_gap)
            - p.wall_gap
            - p.room_depth
            + p.room_depth
    }

    /// Vertical pitch between consecutive floor bands.
    pub fn pitch(&self) -> f64 {
        self.floor_height() + self.stair_gap
    }

    /// Total rooms across all floors.
    pub fn room_count(&self) -> u32 {
        self.floor.room_count() * self.floors
    }

    /// The floor index a room id belongs to (rooms are numbered floor by
    /// floor).
    pub fn floor_of_room(&self, room: RoomId) -> u32 {
        room.raw() / self.floor.room_count()
    }
}

/// Generates the multi-floor building.
pub fn multi_floor_office(params: &MultiFloorParams) -> Result<FloorPlan, FloorPlanError> {
    assert!(params.floors >= 1, "at least one floor");
    let mut b = FloorPlanBuilder::new();
    let pitch = params.pitch();

    let mut bands = Vec::with_capacity(params.floors as usize);
    for f in 0..params.floors {
        let prefix = format!("F{f}-");
        let y0 = f as f64 * pitch;
        bands.push(add_office_floor(&mut b, &params.floor, y0, &prefix));
    }

    // Stairwells: vertical hallways over the connector's x span, bridging
    // floor f's top hallway to floor f+1's bottom hallway.
    let sx = params.floor.connector_x;
    let sw = params.floor.hallway_width;
    for f in 0..params.floors.saturating_sub(1) {
        let (_, top_of_lower) = bands[f as usize];
        let (bottom_of_upper, _) = bands[f as usize + 1];
        b.add_hallway(
            Rect::new(
                sx,
                top_of_lower - sw,
                sw,
                bottom_of_upper + sw - (top_of_lower - sw),
            ),
            format!("stairs-{f}-{}", f + 1),
        );
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::office_building;

    #[test]
    fn three_floor_building_is_valid() {
        let p = MultiFloorParams::default();
        let plan = multi_floor_office(&p).expect("valid building");
        assert_eq!(plan.rooms().len() as u32, p.room_count());
        assert_eq!(plan.rooms().len(), 90);
        // 4 hallways per floor + 2 stairwells.
        assert_eq!(plan.hallways().len(), 3 * 4 + 2);
    }

    #[test]
    fn single_floor_matches_office_building() {
        let p = MultiFloorParams {
            floors: 1,
            ..Default::default()
        };
        let multi = multi_floor_office(&p).unwrap();
        let single = office_building(&OfficeParams::default()).unwrap();
        assert_eq!(multi.rooms().len(), single.rooms().len());
        assert_eq!(multi.hallways().len(), single.hallways().len());
        for (a, b) in multi.rooms().iter().zip(single.rooms()) {
            assert_eq!(a.footprint(), b.footprint());
        }
    }

    #[test]
    fn floors_are_connected_through_stairs() {
        use ripq_geom::Point2;
        let p = MultiFloorParams {
            floors: 2,
            ..Default::default()
        };
        let plan = multi_floor_office(&p).unwrap();
        // Hallway-network connectivity is part of plan validation, but
        // verify the stairwell really overlaps hallways of both floors.
        let stairs = plan
            .hallways()
            .iter()
            .find(|h| h.name().starts_with("stairs"))
            .expect("stairwell exists");
        let overlapping = plan
            .hallways()
            .iter()
            .filter(|h| h.id() != stairs.id() && h.footprint().intersects(stairs.footprint()))
            .count();
        assert!(overlapping >= 2, "stairs bridge two floors: {overlapping}");
        // A point in floor 1's band locates to a floor-1 entity.
        let pitch = p.pitch();
        let up = Point2::new(5.0, pitch + 5.0);
        match plan.locate(up) {
            crate::Location::Room(r) => assert_eq!(p.floor_of_room(r), 1),
            other => panic!("expected a floor-1 room, got {other:?}"),
        }
    }

    #[test]
    fn room_floor_mapping() {
        let p = MultiFloorParams::default();
        assert_eq!(p.floor_of_room(RoomId::new(0)), 0);
        assert_eq!(p.floor_of_room(RoomId::new(29)), 0);
        assert_eq!(p.floor_of_room(RoomId::new(30)), 1);
        assert_eq!(p.floor_of_room(RoomId::new(89)), 2);
    }

    #[test]
    fn names_carry_floor_prefixes() {
        let plan = multi_floor_office(&MultiFloorParams::default()).unwrap();
        assert!(plan.rooms().iter().any(|r| r.name().starts_with("F0-")));
        assert!(plan.rooms().iter().any(|r| r.name().starts_with("F2-")));
        assert!(plan.hallways().iter().any(|h| h.name() == "stairs-1-2"));
    }
}
