//! Doors: point connections between a room and a hallway.

use crate::{DoorId, HallwayId, RoomId};
use ripq_geom::Point2;
use serde::{Deserialize, Serialize};

/// A door connecting a room to a hallway.
///
/// Doors are modelled as points on the shared boundary of the room and
/// hallway footprints. The walking graph inserts a node at the door's
/// projection onto the hallway centerline and an edge from there to the
/// room's center node, so all room entries/exits pass through doors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Door {
    id: DoorId,
    position: Point2,
    room: RoomId,
    hallway: HallwayId,
}

impl Door {
    /// Creates a door at `position` between `room` and `hallway`.
    pub fn new(id: DoorId, position: Point2, room: RoomId, hallway: HallwayId) -> Self {
        Door {
            id,
            position,
            room,
            hallway,
        }
    }

    /// This door's identifier.
    #[inline]
    pub fn id(&self) -> DoorId {
        self.id
    }

    /// Position on the room/hallway shared boundary.
    #[inline]
    pub fn position(&self) -> Point2 {
        self.position
    }

    /// The room this door opens into.
    #[inline]
    pub fn room(&self) -> RoomId {
        self.room
    }

    /// The hallway this door opens onto.
    #[inline]
    pub fn hallway(&self) -> HallwayId {
        self.hallway
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let d = Door::new(
            DoorId::new(4),
            Point2::new(5.0, 9.0),
            RoomId::new(1),
            HallwayId::new(0),
        );
        assert_eq!(d.id(), DoorId::new(4));
        assert_eq!(d.position(), Point2::new(5.0, 9.0));
        assert_eq!(d.room(), RoomId::new(1));
        assert_eq!(d.hallway(), HallwayId::new(0));
    }
}
