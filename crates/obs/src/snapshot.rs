//! Snapshot types and their canonical renderings.
//!
//! [`MetricsSnapshot`] is all-`BTreeMap`, all-integer state, so two
//! snapshots with the same recorded values compare equal and render to
//! byte-identical JSON — the property the determinism tests pin down.
//! JSON is hand-rolled (the vendored serde stand-in has no serializer);
//! the format is stable: two-space indent, name-ordered keys, integers
//! only.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanStat {
    /// How many times the span was recorded.
    pub count: u64,
    /// Total recorded duration in microseconds.
    pub total_micros: u64,
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of (floored) observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// `(bucket lower bound, observations)` for each non-empty bucket,
    /// in increasing bound order. Bucket `[2^(i-1), 2^i)` is keyed by
    /// its inclusive lower bound.
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of every metric a [`crate::Recorder`] collected.
///
/// All maps are name-ordered and all values integral, so equal recorded
/// state ⇒ equal snapshots ⇒ byte-identical [`MetricsSnapshot::to_json`]
/// output. Under `TimingMode::Logical` a full pipeline run reproduces
/// this bit-for-bit across runs and worker counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone counters, `stage.metric` → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (levels), `stage.metric` → value.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms, `stage.metric` → bucketed distribution.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span timings, slash path (`stage/sub`) → aggregate stat.
    pub spans: BTreeMap<String, SpanStat>,
}

/// Escapes a metric name for embedding in a JSON string literal.
fn escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Appends `"key": {…}` object entries for a map, comma-separated.
fn write_map<V>(
    out: &mut String,
    map: &BTreeMap<String, V>,
    mut write_value: impl FnMut(&mut String, &V),
) {
    for (i, (key, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": ", escape(key));
        write_value(out, value);
    }
    if !map.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as deterministic JSON: fixed key order
    /// (name-sorted), fixed layout, integers only. Equal snapshots yield
    /// byte-identical strings.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        write_map(&mut out, &self.counters, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"gauges\": {");
        write_map(&mut out, &self.gauges, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"histograms\": {");
        write_map(&mut out, &self.histograms, |out, h| {
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.min, h.max
            );
            for (i, (bound, hits)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{bound}, {hits}]");
            }
            out.push_str("]}");
        });
        out.push_str("},\n  \"spans\": {");
        write_map(&mut out, &self.spans, |out, s| {
            let _ = write!(
                out,
                "{{\"count\": {}, \"total_micros\": {}}}",
                s.count, s.total_micros
            );
        });
        out.push_str("}\n}\n");
        out
    }

    /// Renders the span map as an indented tree (slash paths nest), for
    /// the CLI's `--trace` output. Durations are microseconds as
    /// measured by the caller's clock — logical ticks under
    /// `TimingMode::Logical`, wall time otherwise.
    pub fn render_trace(&self) -> String {
        let mut out = String::from("span tree (µs, by recorded path):\n");
        if self.spans.is_empty() {
            out.push_str("  (no spans recorded)\n");
            return out;
        }
        for (path, stat) in &self.spans {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let label = format!("{}{}", "  ".repeat(depth + 1), name);
            let _ = writeln!(
                out,
                "{label:<40} ×{:<6} {:>10} µs",
                stat.count, stat.total_micros
            );
        }
        out
    }

    /// The distinct top-level stage names across all metric families —
    /// the part before the first `.` (counters/gauges/histograms) or `/`
    /// (spans). Handy for coverage assertions.
    pub fn stages(&self) -> Vec<String> {
        let mut stages: Vec<String> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|name| name.split('.').next().unwrap_or(name.as_str()).to_string())
            .chain(
                self.spans
                    .keys()
                    .map(|path| path.split('/').next().unwrap_or(path.as_str()).to_string()),
            )
            .collect();
        stages.sort_unstable();
        stages.dedup();
        stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::time::Duration;

    fn sample() -> MetricsSnapshot {
        let rec = Recorder::enabled();
        rec.add("collector.entries_aggregated", 12);
        rec.add("pf.resamples", 3);
        rec.set_gauge("cache.entries", 4);
        rec.observe("pf.ess", 48);
        rec.observe("pf.ess", 64);
        rec.record_span("evaluate", Duration::from_micros(120));
        rec.record_span("evaluate/queries/range", Duration::from_micros(40));
        rec.snapshot()
    }

    #[test]
    fn json_is_deterministic_and_parseable_shape() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b, "equal snapshots must render identically");
        assert!(a.contains("\"counters\": {"), "{a}");
        assert!(a.contains("\"pf.resamples\": 3"), "{a}");
        assert!(a.contains("\"cache.entries\": 4"), "{a}");
        assert!(a.contains("\"buckets\": [[32, 1], [64, 1]]"), "{a}");
        assert!(
            a.contains("\"evaluate/queries/range\": {\"count\": 1, \"total_micros\": 40}"),
            "{a}"
        );
        // Balanced braces/brackets — a cheap well-formedness check.
        let balance = |open: char, close: char| {
            a.chars().filter(|&c| c == open).count() == a.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'), "{a}");
    }

    #[test]
    fn empty_snapshot_renders_empty_families() {
        let json = MetricsSnapshot::default().to_json();
        assert!(json.contains("\"counters\": {}"), "{json}");
        assert!(json.contains("\"spans\": {}"), "{json}");
    }

    #[test]
    fn names_are_escaped() {
        let rec = Recorder::enabled();
        rec.add("weird\"name\\x", 1);
        let json = rec.snapshot().to_json();
        assert!(json.contains("\"weird\\\"name\\\\x\": 1"), "{json}");
    }

    #[test]
    fn trace_tree_nests_by_slash_depth() {
        let trace = sample().render_trace();
        let lines: Vec<&str> = trace.lines().collect();
        assert!(lines[1].trim_start().starts_with("evaluate"), "{trace}");
        let range_line = lines
            .iter()
            .find(|l| l.contains("range"))
            .expect("range span rendered");
        assert!(
            range_line.starts_with("      range"),
            "child indents two levels: {range_line:?}"
        );
        assert!(MetricsSnapshot::default()
            .render_trace()
            .contains("no spans"));
    }

    #[test]
    fn stages_cover_all_families() {
        assert_eq!(
            sample().stages(),
            vec!["cache", "collector", "evaluate", "pf"]
        );
    }
}
