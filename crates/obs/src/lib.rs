//! # ripq-obs — deterministic observability for the RIPQ pipeline
//!
//! A dependency-free metrics layer: counters, gauges, fixed log-bucket
//! histograms and hierarchical spans, all registered by name under the
//! `stage.metric` convention (spans use slash paths, `stage/sub`).
//!
//! ## Determinism contract
//!
//! Every recording operation is **order-commutative**: counters and
//! histogram buckets are atomic adds, min/max are atomic fetch-min/max,
//! gauges are only set from single-threaded call sites. A
//! [`MetricsSnapshot`] taken after worker threads join is therefore
//! bit-identical regardless of worker count or scheduling. This crate
//! never reads a clock: durations are measured by the *caller* (through
//! `ripq_core::Clock`, whose `TimingMode::Logical` mode is a
//! deterministic tick counter) and handed in as [`Duration`] values, so
//! under logical timing the whole snapshot — spans included — reproduces
//! bit-for-bit across runs.
//!
//! ## Zero cost when disabled
//!
//! [`Recorder::disabled`] carries no registry; every handle it hands out
//! is `None` inside, so each record call is a branch on an `Option` and
//! nothing else — no allocation, no locking, no atomics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

mod snapshot;

pub use snapshot::{HistogramSnapshot, MetricsSnapshot, SpanStat};

/// Number of histogram buckets. Bucket 0 holds the value 0; bucket `i`
/// (for `i ≥ 1`) holds values in `[2^(i-1), 2^i)`; the last bucket is
/// open-ended. 32 buckets cover `[0, 2^30)` exactly — minutes of
/// microseconds, or any particle/ESS count this system produces.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Locks a mutex, recovering the guard if a panicking thread poisoned it
/// (metric state is a monotone aggregate — always safe to keep reading).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Shared histogram state: total count, sum of observed values, min/max,
/// and per-bucket counts. All fields are atomics so observations from
/// worker threads commute.
#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }
}

/// The bucket a value falls into: 0 → bucket 0, otherwise
/// `floor(log2(value)) + 1`, clamped to the last (open-ended) bucket.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive lower bound of a bucket, for snapshot rendering.
fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// Metric families, each a name-ordered map so snapshots iterate (and
/// serialize) in one canonical order.
#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

/// Handle to one monotone counter. Cheap to clone; a handle resolved
/// from a disabled [`Recorder`] is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `delta` to the counter (commutative — safe from any thread).
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// Handle to one gauge (last-write-wins level). Only set gauges from
/// single-threaded call sites — stores do not commute across threads.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `value` if it is higher (commutative).
    #[inline]
    pub fn set_max(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(value, Ordering::Relaxed);
        }
    }
}

/// Handle to one fixed log-bucket histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation (commutative — safe from any thread).
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.observe(value);
        }
    }

    /// Records a non-negative float observation, floored to an integer
    /// (negative or non-finite values clamp to 0).
    #[inline]
    pub fn observe_f64(&self, value: f64) {
        if self.0.is_some() {
            let floored = if value.is_finite() && value > 0.0 {
                value.floor() as u64
            } else {
                0
            };
            self.observe(floored);
        }
    }
}

/// Entry point of the metrics layer. Clone freely — clones share one
/// registry. A disabled recorder (the default) records nothing and
/// allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Registry>>,
}

impl Recorder {
    /// A recorder that collects metrics into a fresh registry.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// A recorder whose every operation is a no-op.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// `enabled()` if `on`, otherwise `disabled()`.
    pub fn from_flag(on: bool) -> Self {
        if on {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    /// Whether this recorder actually collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) the counter `name`. Resolve
    /// once outside hot loops and reuse the handle.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|reg| {
            Arc::clone(
                lock(&reg.counters)
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Resolves (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|reg| {
            Arc::clone(
                lock(&reg.gauges)
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Resolves (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|reg| {
            Arc::clone(
                lock(&reg.histograms)
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        }))
    }

    /// Adds `delta` to counter `name` (one-shot convenience; hot paths
    /// should hold a [`Counter`] handle instead).
    pub fn add(&self, name: &str, delta: u64) {
        if self.inner.is_some() {
            self.counter(name).add(delta);
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: u64) {
        if self.inner.is_some() {
            self.gauge(name).set(value);
        }
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if self.inner.is_some() {
            self.histogram(name).observe(value);
        }
    }

    /// Accumulates a caller-measured duration under the span `path`
    /// (slash-separated, e.g. `evaluate/queries/range`). The duration is
    /// stored as whole microseconds; measure it with `ripq_core::Clock`
    /// so logical timing keeps span totals reproducible. Spans nest by
    /// path: `a/b` renders as a child of `a` in the trace tree.
    pub fn record_span(&self, path: &str, elapsed: Duration) {
        if let Some(reg) = &self.inner {
            let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
            let mut spans = lock(&reg.spans);
            let stat = spans.entry(path.to_string()).or_default();
            stat.count += 1;
            stat.total_micros = stat.total_micros.saturating_add(micros);
        }
    }

    /// Takes a point-in-time snapshot of every registered metric. Call
    /// after worker threads have joined; the result is then independent
    /// of thread interleaving. Returns an empty snapshot when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(reg) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = lock(&reg.counters)
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = lock(&reg.gauges)
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = lock(&reg.histograms)
            .iter()
            .map(|(name, core)| {
                let count = core.count.load(Ordering::Relaxed);
                let buckets = core
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(index, cell)| {
                        let hits = cell.load(Ordering::Relaxed);
                        (hits > 0).then(|| (bucket_lower_bound(index), hits))
                    })
                    .collect();
                let snap = HistogramSnapshot {
                    count,
                    sum: core.sum.load(Ordering::Relaxed),
                    min: if count == 0 {
                        0
                    } else {
                        core.min.load(Ordering::Relaxed)
                    },
                    max: core.max.load(Ordering::Relaxed),
                    buckets,
                };
                (name.clone(), snap)
            })
            .collect();
        let spans = lock(&reg.spans).clone();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }

    /// Restores every metric in `snapshot` into this recorder's registry,
    /// registering names as needed and overwriting current values —
    /// the inverse of [`Recorder::snapshot`], used when resuming from a
    /// checkpoint. Existing handles stay valid: values are stored into
    /// the already-registered cells rather than replacing them. A no-op
    /// when disabled.
    pub fn restore(&self, snapshot: &MetricsSnapshot) {
        let Some(reg) = &self.inner else {
            return;
        };
        for (name, value) in &snapshot.counters {
            lock(&reg.counters)
                .entry(name.clone())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .store(*value, Ordering::Relaxed);
        }
        for (name, value) in &snapshot.gauges {
            lock(&reg.gauges)
                .entry(name.clone())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .store(*value, Ordering::Relaxed);
        }
        for (name, h) in &snapshot.histograms {
            let core = Arc::clone(
                lock(&reg.histograms)
                    .entry(name.clone())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            );
            core.count.store(h.count, Ordering::Relaxed);
            core.sum.store(h.sum, Ordering::Relaxed);
            // Snapshots render the min of an empty histogram as 0; the
            // live sentinel is u64::MAX so the first observation wins.
            core.min.store(
                if h.count == 0 { u64::MAX } else { h.min },
                Ordering::Relaxed,
            );
            core.max.store(h.max, Ordering::Relaxed);
            for bucket in &core.buckets {
                bucket.store(0, Ordering::Relaxed);
            }
            for &(bound, hits) in &h.buckets {
                // Invert `bucket_lower_bound`: 0 → bucket 0, 2^(i-1) → i.
                let index = if bound == 0 {
                    0
                } else {
                    (bound.trailing_zeros() as usize + 1).min(HISTOGRAM_BUCKETS - 1)
                };
                core.buckets[index].store(hits, Ordering::Relaxed);
            }
        }
        let mut spans = lock(&reg.spans);
        for (path, stat) in &snapshot.spans {
            spans.insert(path.clone(), *stat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.add("x.count", 5);
        rec.observe("x.hist", 3);
        rec.set_gauge("x.gauge", 9);
        rec.record_span("a/b", Duration::from_micros(10));
        let snap = rec.snapshot();
        assert_eq!(snap, MetricsSnapshot::default());
        // Handles from a disabled recorder carry no registry cell.
        let counter = rec.counter("x.count");
        counter.add(1);
        assert!(rec.snapshot().counters.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let rec = Recorder::enabled();
        let counter = rec.counter("pf.resamples");
        counter.add(2);
        counter.inc();
        rec.add("pf.resamples", 1);
        rec.set_gauge("cache.entries", 7);
        rec.gauge("cache.entries").set_max(5); // lower — keeps 7
        rec.gauge("cache.entries").set_max(11);
        let hist = rec.histogram("pf.ess");
        hist.observe(0);
        hist.observe(1);
        hist.observe(63);
        hist.observe_f64(64.9);
        hist.observe_f64(-3.0);
        hist.observe_f64(f64::NAN);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["pf.resamples"], 4);
        assert_eq!(snap.gauges["cache.entries"], 11);
        let h = &snap.histograms["pf.ess"];
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 128);
        assert_eq!((h.min, h.max), (0, 64));
        // 0 ×3 → bucket lb 0; 1 → lb 1; 63 → lb 32; 64 → lb 64.
        assert_eq!(h.buckets, vec![(0, 3), (1, 1), (32, 1), (64, 1)]);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(5), 16);
    }

    #[test]
    fn spans_accumulate_by_path() {
        let rec = Recorder::enabled();
        rec.record_span("evaluate", Duration::from_micros(100));
        rec.record_span("evaluate/queries/range", Duration::from_micros(30));
        rec.record_span("evaluate/queries/range", Duration::from_micros(12));
        let snap = rec.snapshot();
        assert_eq!(snap.spans["evaluate"].count, 1);
        let range = &snap.spans["evaluate/queries/range"];
        assert_eq!((range.count, range.total_micros), (2, 42));
    }

    #[test]
    fn concurrent_recording_commutes() {
        let rec = Recorder::enabled();
        let counter = rec.counter("c");
        let hist = rec.histogram("h");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = counter.clone();
                let hist = hist.clone();
                scope.spawn(move || {
                    for v in 0..100u64 {
                        counter.add(1);
                        hist.observe(v);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counters["c"], 400);
        assert_eq!(snap.histograms["h"].count, 400);
        assert_eq!(
            (snap.histograms["h"].min, snap.histograms["h"].max),
            (0, 99)
        );
    }

    #[test]
    fn restore_inverts_snapshot_exactly() {
        let rec = Recorder::enabled();
        rec.add("a.count", 7);
        rec.set_gauge("a.gauge", 12);
        let hist = rec.histogram("a.hist");
        hist.observe(0);
        hist.observe(5);
        hist.observe(1_000_000);
        let _ = rec.histogram("a.empty"); // registered, never observed
        rec.record_span("run/pf", Duration::from_micros(250));
        let snap = rec.snapshot();

        let restored = Recorder::enabled();
        restored.restore(&snap);
        assert_eq!(restored.snapshot(), snap, "restore(snapshot) != identity");

        // The empty histogram's min sentinel survived the round trip:
        // its first post-restore observation still sets the min.
        restored.histogram("a.empty").observe(42);
        assert_eq!(restored.snapshot().histograms["a.empty"].min, 42);

        // Restoring into a registry with pre-resolved handles keeps them
        // live and overwrites their values.
        let busy = Recorder::enabled();
        let pre = busy.counter("a.count");
        pre.add(999);
        busy.restore(&snap);
        assert_eq!(busy.snapshot().counters["a.count"], 7);
        pre.inc();
        assert_eq!(busy.snapshot().counters["a.count"], 8);
    }

    #[test]
    fn restore_on_disabled_recorder_is_a_noop() {
        let rec = Recorder::enabled();
        rec.add("x", 1);
        let snap = rec.snapshot();
        let off = Recorder::disabled();
        off.restore(&snap);
        assert_eq!(off.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn clones_share_one_registry() {
        let rec = Recorder::enabled();
        let other = rec.clone();
        other.add("shared", 3);
        assert_eq!(rec.snapshot().counters["shared"], 3);
    }
}
