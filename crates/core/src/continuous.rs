//! Continuous indoor queries — the paper's stated future work ("we intend
//! to extend our framework to support more spatial query types such as
//! continuous range, continuous kNN", §6).
//!
//! A continuous query stays registered across timestamps; after each new
//! evaluation of the underlying `APtoObjHT` index it reports a *delta*
//! (which objects appeared, disappeared, or changed probability) instead
//! of a full result, which is what monitoring applications consume.

use crate::system::EvaluationReport;
use crate::{evaluate_knn, evaluate_range, KnnQuery, QueryId, RangeQuery, ResultSet, RipqError};
use ripq_floorplan::FloorPlan;
use ripq_geom::{Point2, Rect};
use ripq_graph::{AnchorObjectIndex, AnchorSet, WalkingGraph};
use ripq_rfid::ObjectId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Probability movements below this threshold are not reported as changes.
pub const CHANGE_EPSILON: f64 = 1e-9;

/// The difference between two consecutive evaluations of a continuous
/// query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResultDelta {
    /// Objects that entered the result set, with their new probability.
    pub appeared: Vec<(ObjectId, f64)>,
    /// Objects that left the result set.
    pub disappeared: Vec<ObjectId>,
    /// Objects whose probability changed: `(object, old, new)`.
    pub changed: Vec<(ObjectId, f64, f64)>,
}

impl ResultDelta {
    /// `true` when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.appeared.is_empty() && self.disappeared.is_empty() && self.changed.is_empty()
    }

    /// Computes the delta that turns `old` into `new`. Output vectors are
    /// sorted by object id, so a delta renders identically on every run.
    pub fn between(old: &ResultSet, new: &ResultSet) -> ResultDelta {
        let mut delta = ResultDelta::default();
        for (o, p_new) in new.iter() {
            let p_old = old.probability(o);
            // ripq-lint: allow(prob-hygiene) -- exact zero is ResultSet's absent-object sentinel, not a float tolerance
            if p_old == 0.0 {
                delta.appeared.push((o, p_new));
            } else if (p_new - p_old).abs() > CHANGE_EPSILON {
                delta.changed.push((o, p_old, p_new));
            }
        }
        for (o, _) in old.iter() {
            // ripq-lint: allow(prob-hygiene) -- exact zero is ResultSet's absent-object sentinel, not a float tolerance
            if new.probability(o) == 0.0 {
                delta.disappeared.push(o);
            }
        }
        delta.appeared.sort_by_key(|&(o, _)| o);
        delta.disappeared.sort_unstable();
        delta.changed.sort_by_key(|&(o, _, _)| o);
        delta
    }

    /// Folds this delta into `rs` — the inverse of
    /// [`ResultDelta::between`]: applying every delta of a run, in order,
    /// onto an empty set reproduces the latest full result exactly.
    pub fn apply(&self, rs: &mut ResultSet) {
        for &(o, p) in &self.appeared {
            rs.set(o, p);
        }
        for &o in &self.disappeared {
            rs.set(o, 0.0);
        }
        for &(o, _, p_new) in &self.changed {
            rs.set(o, p_new);
        }
    }
}

/// What a continuous subscription watches — enough information to
/// re-register the underlying query after a restart (queries are
/// deliberately not part of durable snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SubscriptionKind {
    /// A continuous range query over a fixed window.
    Range(Rect),
    /// A continuous kNN query anchored at a fixed point.
    Knn(Point2, usize),
}

/// One registered continuous subscription: the externally chosen id maps
/// to the engine-side [`QueryId`] plus the most recent full result.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// What the subscription watches.
    pub kind: SubscriptionKind,
    /// The engine-side query backing this subscription. May differ
    /// across process lives (queries are re-registered on recovery); the
    /// subscription id is the stable external identity.
    pub query: QueryId,
    current: ResultSet,
}

impl Subscription {
    /// The most recent full result delivered for this subscription.
    pub fn current(&self) -> &ResultSet {
        &self.current
    }
}

/// The server-facing subscription registry: maps client-chosen
/// subscription ids to engine queries and computes per-epoch
/// [`ResultDelta`]s from full [`EvaluationReport`]s.
///
/// Unlike [`ContinuousEngine`] — which owns its queries and re-evaluates
/// them against a raw index — the registry rides on queries registered
/// with an [`crate::IndoorQuerySystem`], so candidate pruning and degraded
/// evaluation apply to continuous queries exactly as to snapshot ones.
#[derive(Debug, Default)]
pub struct SubscriptionRegistry {
    subs: BTreeMap<u64, Subscription>,
}

impl SubscriptionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers subscription `sub` as watching `kind` through engine
    /// query `query`. Fails when the id is already taken.
    pub fn insert(
        &mut self,
        sub: u64,
        kind: SubscriptionKind,
        query: QueryId,
    ) -> Result<(), RipqError> {
        if self.subs.contains_key(&sub) {
            return Err(RipqError::DuplicateSubscription(sub));
        }
        self.subs.insert(
            sub,
            Subscription {
                kind,
                query,
                current: ResultSet::new(),
            },
        );
        Ok(())
    }

    /// Removes a subscription, returning it (deregister its
    /// [`Subscription::query`] from the system too).
    pub fn remove(&mut self, sub: u64) -> Option<Subscription> {
        self.subs.remove(&sub)
    }

    /// Looks up a subscription.
    pub fn get(&self, sub: u64) -> Option<&Subscription> {
        self.subs.get(&sub)
    }

    /// Iterates subscriptions in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Subscription)> + '_ {
        self.subs.iter().map(|(&id, s)| (id, s))
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// `true` when no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Replaces a subscription's maintained result with checkpointed
    /// state (recovery support). Returns `false` for unknown ids.
    pub fn restore_current(&mut self, sub: u64, current: ResultSet) -> bool {
        match self.subs.get_mut(&sub) {
            Some(s) => {
                s.current = current;
                true
            }
            None => false,
        }
    }

    /// Folds one evaluation pass into every subscription: each
    /// subscription whose backing query answered in `report` advances its
    /// maintained result and contributes its delta. Returns the non-empty
    /// deltas in subscription-id order.
    pub fn deltas(&mut self, report: &EvaluationReport) -> Vec<(u64, ResultDelta)> {
        let mut out = Vec::new();
        for (&id, s) in &mut self.subs {
            let new = report
                .range_results
                .get(&s.query)
                .or_else(|| report.knn_results.get(&s.query));
            let Some(new) = new else {
                continue;
            };
            let delta = ResultDelta::between(&s.current, new);
            s.current = new.clone();
            if !delta.is_empty() {
                out.push((id, delta));
            }
        }
        out
    }
}

/// A continuous range query with incremental result maintenance.
#[derive(Debug, Clone)]
pub struct ContinuousRangeQuery {
    query: RangeQuery,
    current: ResultSet,
}

impl ContinuousRangeQuery {
    /// Wraps a range query for continuous monitoring.
    pub fn new(query: RangeQuery) -> Self {
        ContinuousRangeQuery {
            query,
            current: ResultSet::new(),
        }
    }

    /// The underlying query.
    pub fn query(&self) -> &RangeQuery {
        &self.query
    }

    /// The most recent full result.
    pub fn current(&self) -> &ResultSet {
        &self.current
    }

    /// Re-evaluates against a fresh index and returns the delta.
    pub fn update(
        &mut self,
        plan: &FloorPlan,
        anchors: &AnchorSet,
        index: &AnchorObjectIndex<ObjectId>,
    ) -> ResultDelta {
        let new = evaluate_range(plan, anchors, index, &self.query.window);
        let delta = ResultDelta::between(&self.current, &new);
        self.current = new;
        delta
    }
}

/// A continuous kNN query with incremental result maintenance.
#[derive(Debug, Clone)]
pub struct ContinuousKnnQuery {
    query: KnnQuery,
    current: ResultSet,
}

impl ContinuousKnnQuery {
    /// Wraps a kNN query for continuous monitoring.
    pub fn new(query: KnnQuery) -> Self {
        ContinuousKnnQuery {
            query,
            current: ResultSet::new(),
        }
    }

    /// The underlying query.
    pub fn query(&self) -> &KnnQuery {
        &self.query
    }

    /// The most recent full result.
    pub fn current(&self) -> &ResultSet {
        &self.current
    }

    /// Re-evaluates against a fresh index and returns the delta.
    pub fn update(
        &mut self,
        graph: &WalkingGraph,
        anchors: &AnchorSet,
        index: &AnchorObjectIndex<ObjectId>,
    ) -> ResultDelta {
        let new = evaluate_knn(graph, anchors, index, &self.query);
        let delta = ResultDelta::between(&self.current, &new);
        self.current = new;
        delta
    }
}

/// A registry that owns many continuous queries and refreshes all of them
/// against each new index in one call — the monitoring loop's driver.
#[derive(Debug, Default)]
pub struct ContinuousEngine {
    ranges: Vec<(crate::QueryId, ContinuousRangeQuery)>,
    knns: Vec<(crate::QueryId, ContinuousKnnQuery)>,
    next: u32,
}

impl ContinuousEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a continuous range query.
    pub fn add_range(
        &mut self,
        window: ripq_geom::Rect,
    ) -> Result<crate::QueryId, crate::CoreError> {
        let id = crate::QueryId::new(self.next);
        let q = RangeQuery::new(id, window)?;
        self.next += 1;
        self.ranges.push((id, ContinuousRangeQuery::new(q)));
        Ok(id)
    }

    /// Registers a continuous kNN query.
    pub fn add_knn(
        &mut self,
        point: ripq_geom::Point2,
        k: usize,
    ) -> Result<crate::QueryId, crate::CoreError> {
        let id = crate::QueryId::new(self.next);
        let q = KnnQuery::new(id, point, k)?;
        self.next += 1;
        self.knns.push((id, ContinuousKnnQuery::new(q)));
        Ok(id)
    }

    /// Number of registered continuous queries.
    pub fn len(&self) -> usize {
        self.ranges.len() + self.knns.len()
    }

    /// `true` when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty() && self.knns.is_empty()
    }

    /// Refreshes every query against a fresh index; returns the non-empty
    /// deltas in registration order.
    pub fn update_all(
        &mut self,
        plan: &FloorPlan,
        graph: &WalkingGraph,
        anchors: &AnchorSet,
        index: &AnchorObjectIndex<ObjectId>,
    ) -> Vec<(crate::QueryId, ResultDelta)> {
        let mut out = Vec::new();
        for (id, q) in &mut self.ranges {
            let d = q.update(plan, anchors, index);
            if !d.is_empty() {
                out.push((*id, d));
            }
        }
        for (id, q) in &mut self.knns {
            let d = q.update(graph, anchors, index);
            if !d.is_empty() {
                out.push((*id, d));
            }
        }
        out
    }

    /// The current full result of a registered query, if it exists.
    pub fn current(&self, id: crate::QueryId) -> Option<&ResultSet> {
        self.ranges
            .iter()
            .find(|(qid, _)| *qid == id)
            .map(|(_, q)| q.current())
            .or_else(|| {
                self.knns
                    .iter()
                    .find(|(qid, _)| *qid == id)
                    .map(|(_, q)| q.current())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryId;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;

    fn o(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn world() -> (FloorPlan, WalkingGraph, AnchorSet) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        (plan, graph, anchors)
    }

    #[test]
    fn delta_between_result_sets() {
        let old: ResultSet = [(o(1), 0.5), (o(2), 0.5)].into_iter().collect();
        let new: ResultSet = [(o(2), 0.8), (o(3), 0.2)].into_iter().collect();
        let d = ResultDelta::between(&old, &new);
        assert_eq!(d.appeared, vec![(o(3), 0.2)]);
        assert_eq!(d.disappeared, vec![o(1)]);
        assert_eq!(d.changed, vec![(o(2), 0.5, 0.8)]);
        assert!(!d.is_empty());
    }

    #[test]
    fn no_change_yields_empty_delta() {
        let rs: ResultSet = [(o(1), 0.5)].into_iter().collect();
        let d = ResultDelta::between(&rs, &rs.clone());
        assert!(d.is_empty());
    }

    #[test]
    fn continuous_range_reports_appearance_and_disappearance() {
        let (plan, _, anchors) = world();
        let room = &plan.rooms()[3];
        let q = RangeQuery::new(QueryId::new(0), *room.footprint()).unwrap();
        let mut cq = ContinuousRangeQuery::new(q);

        // t0: object in the room.
        let mut index = AnchorObjectIndex::new();
        index.set_object(o(0), vec![(anchors.in_room(room.id())[0], 1.0)]);
        let d0 = cq.update(&plan, &anchors, &index);
        assert_eq!(d0.appeared.len(), 1);
        assert!((cq.current().probability(o(0)) - 1.0).abs() < 1e-9);

        // t1: object moved to a hallway anchor far away.
        let far = anchors.in_hallway(plan.hallways()[2].id())[0];
        index.set_object(o(0), vec![(far, 1.0)]);
        let d1 = cq.update(&plan, &anchors, &index);
        assert_eq!(d1.disappeared, vec![o(0)]);
        assert!(cq.current().is_empty());

        // t2: nothing changed.
        let d2 = cq.update(&plan, &anchors, &index);
        assert!(d2.is_empty());
    }

    #[test]
    fn engine_drives_many_queries() {
        let (plan, graph, anchors) = world();
        let mut engine = ContinuousEngine::new();
        let room = &plan.rooms()[2];
        let rq = engine.add_range(*room.footprint()).unwrap();
        let kq = engine
            .add_knn(plan.hallways()[0].footprint().center(), 1)
            .unwrap();
        assert_eq!(engine.len(), 2);
        assert!(!engine.is_empty());

        let mut index = AnchorObjectIndex::new();
        index.set_object(o(0), vec![(anchors.in_room(room.id())[0], 1.0)]);
        let deltas = engine.update_all(&plan, &graph, &anchors, &index);
        // Both queries see the object appear.
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().any(|(id, _)| *id == rq));
        assert!(deltas.iter().any(|(id, _)| *id == kq));
        assert!((engine.current(rq).unwrap().probability(o(0)) - 1.0).abs() < 1e-9);

        // No change → no deltas.
        let deltas = engine.update_all(&plan, &graph, &anchors, &index);
        assert!(deltas.is_empty());
        // Unknown id → None.
        assert!(engine.current(crate::QueryId::new(99)).is_none());
        // Validation errors propagate.
        assert!(engine.add_knn(ripq_geom::Point2::ORIGIN, 0).is_err());
    }

    #[test]
    fn deltas_fold_back_into_the_full_result() {
        let old: ResultSet = [(o(1), 0.5), (o(2), 0.5)].into_iter().collect();
        let new: ResultSet = [(o(2), 0.8), (o(3), 0.2)].into_iter().collect();
        let d = ResultDelta::between(&old, &new);
        let mut folded = old.clone();
        d.apply(&mut folded);
        assert_eq!(folded, new);
        // From empty through both states.
        let mut from_empty = ResultSet::new();
        ResultDelta::between(&ResultSet::new(), &old).apply(&mut from_empty);
        d.apply(&mut from_empty);
        assert_eq!(from_empty, new);
    }

    #[test]
    fn subscription_registry_maps_reports_to_deltas() {
        use crate::{IndoorQuerySystem, SystemConfig};
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut sys = IndoorQuerySystem::new(plan, SystemConfig::default(), 7);
        let reader = sys.readers()[2];
        for s in 0..3u64 {
            sys.ingest_detections(s, &[(o(0), reader.id())]);
        }
        let window = ripq_geom::Rect::centered(reader.position(), 10.0, 6.0);
        let qid = sys.register_range(window).unwrap();
        let mut reg = SubscriptionRegistry::new();
        reg.insert(7, SubscriptionKind::Range(window), qid).unwrap();
        assert_eq!(
            reg.insert(7, SubscriptionKind::Range(window), qid),
            Err(RipqError::DuplicateSubscription(7))
        );
        assert_eq!(reg.len(), 1);

        let report = sys.evaluate(3);
        let deltas = reg.deltas(&report);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].0, 7);
        assert!(!deltas[0].1.appeared.is_empty());
        assert_eq!(reg.get(7).unwrap().current(), &report.range_results[&qid]);

        // Same state again: no deltas.
        let report2 = sys.evaluate(3);
        assert!(reg.deltas(&report2).is_empty());

        // Removal hands back the subscription for query deregistration.
        let s = reg.remove(7).unwrap();
        assert_eq!(s.query, qid);
        assert!(reg.is_empty());
        assert!(reg.remove(7).is_none());
        assert!(!reg.restore_current(7, ResultSet::new()));
    }

    #[test]
    fn continuous_knn_tracks_probability_changes() {
        let (plan, graph, anchors) = world();
        let center = plan.hallways()[0].footprint().center();
        let q = KnnQuery::new(QueryId::new(0), center, 1).unwrap();
        let mut cq = ContinuousKnnQuery::new(q);

        let near = anchors.nearest(graph.project(center));
        let mut index = AnchorObjectIndex::new();
        index.set_object(o(0), vec![(near, 1.0)]);
        let d0 = cq.update(&graph, &anchors, &index);
        assert_eq!(d0.appeared, vec![(o(0), 1.0)]);

        // The object's inference becomes uncertain: probability drops but a
        // second object fills the result set.
        let far = anchors.in_hallway(plan.hallways()[2].id())[0];
        index.set_object(o(0), vec![(near, 0.4), (far, 0.6)]);
        index.set_object(o(1), vec![(near, 1.0)]);
        let d1 = cq.update(&graph, &anchors, &index);
        assert!(d1.appeared.iter().any(|&(obj, _)| obj == o(1)));
        assert!(d1
            .changed
            .iter()
            .any(|&(obj, old, new)| obj == o(0) && old == 1.0 && (new - 0.4).abs() < 1e-9));
    }
}
