//! Error type of the query engine.

use std::fmt;

/// Errors surfaced by the query evaluation engine.
///
/// This is the workspace-wide error currency for fallible result paths:
/// the `no-panic-paths` lint rule pushes library code toward returning
/// `Result<_, RipqError>` instead of unwrapping.
#[derive(Debug, Clone, PartialEq)]
pub enum RipqError {
    /// A kNN query was registered with `k = 0`.
    ZeroK,
    /// A range query window has zero area.
    EmptyWindow,
    /// A query id was not found among registered queries.
    UnknownQuery(u32),
    /// A PTkNN query was given a probability threshold outside `(0, 1]`.
    InvalidThreshold(f64),
    /// An object listed by an index was missing its probability entries —
    /// an internal inconsistency between index views.
    InconsistentIndex(u32),
    /// An input/output operation failed (e.g. writing a metrics snapshot
    /// to disk). Carries the rendered underlying error.
    Io(String),
    /// A continuous-query subscription id was registered twice.
    DuplicateSubscription(u64),
}

/// Historical name of [`RipqError`], kept for downstream source
/// compatibility.
pub type CoreError = RipqError;

impl fmt::Display for RipqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RipqError::ZeroK => write!(f, "kNN query requires k >= 1"),
            RipqError::EmptyWindow => write!(f, "range query window has zero area"),
            RipqError::UnknownQuery(id) => write!(f, "unknown query id {id}"),
            RipqError::InvalidThreshold(t) => {
                write!(f, "PTkNN threshold must be in (0, 1], got {t}")
            }
            RipqError::InconsistentIndex(obj) => {
                write!(f, "index views disagree about object {obj}")
            }
            RipqError::Io(msg) => write!(f, "io error: {msg}"),
            RipqError::DuplicateSubscription(id) => {
                write!(f, "subscription id {id} is already registered")
            }
        }
    }
}

impl std::error::Error for RipqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(RipqError::ZeroK.to_string().contains("k >= 1"));
        assert!(RipqError::UnknownQuery(7).to_string().contains('7'));
        assert!(RipqError::EmptyWindow.to_string().contains("zero area"));
        assert!(RipqError::InconsistentIndex(3).to_string().contains('3'));
        assert!(RipqError::Io("denied".into())
            .to_string()
            .contains("io error: denied"));
        assert!(RipqError::DuplicateSubscription(4)
            .to_string()
            .contains('4'));
    }

    #[test]
    fn legacy_alias_still_names_the_same_type() {
        let e: CoreError = RipqError::ZeroK;
        assert_eq!(e, RipqError::ZeroK);
    }
}
