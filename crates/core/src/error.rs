//! Error type of the query engine.

use std::fmt;

/// Errors surfaced by the query evaluation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A kNN query was registered with `k = 0`.
    ZeroK,
    /// A range query window has zero area.
    EmptyWindow,
    /// A query id was not found among registered queries.
    UnknownQuery(u32),
    /// A PTkNN query was given a probability threshold outside `(0, 1]`.
    InvalidThreshold(f64),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ZeroK => write!(f, "kNN query requires k >= 1"),
            CoreError::EmptyWindow => write!(f, "range query window has zero area"),
            CoreError::UnknownQuery(id) => write!(f, "unknown query id {id}"),
            CoreError::InvalidThreshold(t) => {
                write!(f, "PTkNN threshold must be in (0, 1], got {t}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CoreError::ZeroK.to_string().contains("k >= 1"));
        assert!(CoreError::UnknownQuery(7).to_string().contains('7'));
        assert!(CoreError::EmptyWindow.to_string().contains("zero area"));
    }
}
