//! Room-occupancy analytics over the probabilistic index.
//!
//! Facility dashboards ask aggregate questions — "how many people are in
//! each meeting room right now?" — rather than per-object queries. Under
//! probabilistic locations the natural answer is the *expected* occupant
//! count per room: the sum over objects of their probability of being in
//! that room. This module computes the full occupancy report in one pass
//! over the `APtoObjHT` index.

use ripq_floorplan::{FloorPlan, Location, RoomId};
use ripq_graph::{AnchorObjectIndex, AnchorSet};
use ripq_rfid::ObjectId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Expected occupancy of one room.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoomOccupancy {
    /// The room.
    pub room: RoomId,
    /// Expected number of occupants (sum of per-object probabilities).
    pub expected: f64,
    /// Objects with probability ≥ 0.5 of being in this room.
    pub likely_occupants: Vec<ObjectId>,
}

/// Full occupancy report at one instant.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OccupancyReport {
    /// Per-room occupancy, indexable by [`RoomId::index`].
    pub rooms: Vec<RoomOccupancy>,
    /// Expected number of objects in hallways (not in any room).
    pub hallway_expected: f64,
}

impl OccupancyReport {
    /// The `n` rooms with the highest expected occupancy.
    pub fn busiest(&self, n: usize) -> Vec<&RoomOccupancy> {
        let mut v: Vec<&RoomOccupancy> = self.rooms.iter().collect();
        v.sort_by(|a, b| {
            b.expected
                .partial_cmp(&a.expected)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.room.cmp(&b.room))
        });
        v.truncate(n);
        v
    }

    /// Total expected population (rooms + hallways).
    pub fn total_expected(&self) -> f64 {
        self.rooms.iter().map(|r| r.expected).sum::<f64>() + self.hallway_expected
    }
}

/// Computes the expected occupancy of every room from the filtered index.
pub fn room_occupancy(
    plan: &FloorPlan,
    anchors: &AnchorSet,
    index: &AnchorObjectIndex<ObjectId>,
) -> OccupancyReport {
    // Per (room, object) probability accumulation. Ordered maps so the
    // per-room float sums below accumulate in object-id order and round
    // identically on every run.
    let mut per_room: Vec<BTreeMap<ObjectId, f64>> = vec![BTreeMap::new(); plan.rooms().len()];
    let mut hallway_expected = 0.0;
    let objects: Vec<ObjectId> = index.objects().copied().collect();
    for o in &objects {
        let Some(dist) = index.distribution(o) else {
            continue;
        };
        for &(a, p) in dist {
            match anchors.anchor(a).location {
                Location::Room(r) => {
                    *per_room[r.index()].entry(*o).or_insert(0.0) += p;
                }
                Location::Hallway(_) | Location::Outside => hallway_expected += p,
            }
        }
    }
    let rooms = per_room
        .into_iter()
        .enumerate()
        .map(|(i, probs)| {
            let expected = probs.values().sum();
            let mut likely: Vec<ObjectId> = probs
                .iter()
                .filter(|(_, &p)| p >= 0.5)
                .map(|(&o, _)| o)
                .collect();
            likely.sort_unstable();
            RoomOccupancy {
                room: RoomId::new(i as u32),
                expected,
                likely_occupants: likely,
            }
        })
        .collect();
    OccupancyReport {
        rooms,
        hallway_expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;

    fn o(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn occupancy_sums_probabilities_per_room() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let mut index = AnchorObjectIndex::new();
        let room = &plan.rooms()[4];
        let ra = anchors.in_room(room.id());
        // o0 fully in the room; o1 half in the room, half in a hallway.
        index.set_object(o(0), vec![(ra[0], 0.6), (ra[ra.len() - 1], 0.4)]);
        let hall_anchor = anchors.in_hallway(plan.hallways()[0].id())[0];
        index.set_object(o(1), vec![(ra[0], 0.5), (hall_anchor, 0.5)]);

        let report = room_occupancy(&plan, &anchors, &index);
        let occ = &report.rooms[room.id().index()];
        assert!((occ.expected - 1.5).abs() < 1e-9);
        assert_eq!(occ.likely_occupants, vec![o(0), o(1)]);
        assert!((report.hallway_expected - 0.5).abs() < 1e-9);
        assert!((report.total_expected() - 2.0).abs() < 1e-9);
        // Other rooms are empty.
        let other = &report.rooms[(room.id().index() + 1) % 30];
        assert_eq!(other.expected, 0.0);
        assert!(other.likely_occupants.is_empty());
    }

    #[test]
    fn busiest_ranks_by_expected_count() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let mut index = AnchorObjectIndex::new();
        for (i, room_idx) in [2usize, 2, 2, 9, 9, 17].iter().enumerate() {
            let ra = anchors.in_room(plan.rooms()[*room_idx].id());
            index.set_object(o(i as u32), vec![(ra[0], 1.0)]);
        }
        let report = room_occupancy(&plan, &anchors, &index);
        let busiest = report.busiest(2);
        assert_eq!(busiest[0].room, plan.rooms()[2].id());
        assert!((busiest[0].expected - 3.0).abs() < 1e-9);
        assert_eq!(busiest[1].room, plan.rooms()[9].id());
        assert_eq!(busiest[1].likely_occupants.len(), 2);
    }

    #[test]
    fn empty_index_gives_empty_report() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let index = AnchorObjectIndex::new();
        let report = room_occupancy(&plan, &anchors, &index);
        assert_eq!(report.rooms.len(), 30);
        assert_eq!(report.total_expected(), 0.0);
    }
}
