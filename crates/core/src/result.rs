//! Probabilistic result sets with the paper's merge semantics.

use ripq_rfid::ObjectId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One ⟨object, probability⟩ pair of a probabilistic result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbResult {
    /// The object.
    pub object: ObjectId,
    /// Its probability of satisfying the query.
    pub probability: f64,
}

/// A probabilistic result set with the addition/multiplication operations
/// Algorithm 3 defines:
///
/// * **addition** (line 16): adding `⟨oᵢ, p⟩` sums `p` into `oᵢ`'s existing
///   probability, inserting when absent;
/// * **multiplication** (line 15): scales every probability by a constant
///   (the width/area compensation ratios).
///
/// Backed by a `BTreeMap` so every iteration — including the float
/// summation in [`ResultSet::total_probability`] — visits objects in id
/// order and rounds identically on every run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResultSet {
    probs: BTreeMap<ObjectId, f64>,
}

impl ResultSet {
    /// Creates an empty result set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `p` to `object`'s probability (Algorithm 3's `+` operation).
    pub fn add(&mut self, object: ObjectId, p: f64) {
        // ripq-lint: allow(prob-hygiene) -- exact-zero sentinel: skip inserting objects that contribute nothing, not a tolerance check
        if p != 0.0 {
            *self.probs.entry(object).or_insert(0.0) += p;
        }
    }

    /// Sets `object`'s probability exactly, removing the entry at zero —
    /// the fold operation continuous-query deltas are replayed with (see
    /// [`crate::continuous::ResultDelta::apply`]).
    pub fn set(&mut self, object: ObjectId, p: f64) {
        // ripq-lint: allow(prob-hygiene) -- exact zero is the absent-object sentinel, not a float tolerance
        if p == 0.0 {
            self.probs.remove(&object);
        } else {
            self.probs.insert(object, p);
        }
    }

    /// Merges another result set (used for the per-cell partial results).
    pub fn merge(&mut self, other: &ResultSet) {
        for (&o, &p) in &other.probs {
            self.add(o, p);
        }
    }

    /// Scales every probability by `ratio` (Algorithm 3's `*` operation).
    pub fn scale(&mut self, ratio: f64) {
        for p in self.probs.values_mut() {
            *p *= ratio;
        }
    }

    /// The probability of `object` (0 when absent).
    pub fn probability(&self, object: ObjectId) -> f64 {
        self.probs.get(&object).copied().unwrap_or(0.0)
    }

    /// Total probability over all objects (the Σpᵢ that Algorithm 4's
    /// stopping rule compares against `k`).
    pub fn total_probability(&self) -> f64 {
        self.probs.values().sum()
    }

    /// Number of objects with non-zero probability.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` when no object has probability.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The results sorted by decreasing probability (ties by object id for
    /// determinism).
    pub fn sorted(&self) -> Vec<ProbResult> {
        let mut v: Vec<ProbResult> = self
            .probs
            .iter()
            .map(|(&object, &probability)| ProbResult {
                object,
                probability,
            })
            .collect();
        v.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.object.cmp(&b.object))
        });
        v
    }

    /// The `n` most probable objects.
    pub fn top(&self, n: usize) -> Vec<ProbResult> {
        let mut v = self.sorted();
        v.truncate(n);
        v
    }

    /// Iterator over ⟨object, probability⟩ pairs in object-id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, f64)> + '_ {
        self.probs.iter().map(|(&o, &p)| (o, p))
    }

    /// Objects present in the set, in id order.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.probs.keys().copied()
    }
}

impl FromIterator<(ObjectId, f64)> for ResultSet {
    fn from_iter<T: IntoIterator<Item = (ObjectId, f64)>>(iter: T) -> Self {
        let mut rs = ResultSet::new();
        for (o, p) in iter {
            rs.add(o, p);
        }
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn paper_example_addition() {
        // §4.6.1: {(o1,0.2),(o2,0.15)} + {(o2,0.1),(o3,0.05)}
        //       = {(o1,0.2),(o2,0.25),(o3,0.05)}
        let mut rs: ResultSet = [(o(1), 0.2), (o(2), 0.15)].into_iter().collect();
        let other: ResultSet = [(o(2), 0.1), (o(3), 0.05)].into_iter().collect();
        rs.merge(&other);
        assert!((rs.probability(o(1)) - 0.2).abs() < 1e-12);
        assert!((rs.probability(o(2)) - 0.25).abs() < 1e-12);
        assert!((rs.probability(o(3)) - 0.05).abs() < 1e-12);
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn scale_multiplies_all() {
        let mut rs: ResultSet = [(o(1), 0.4), (o(2), 0.6)].into_iter().collect();
        rs.scale(0.5);
        assert!((rs.probability(o(1)) - 0.2).abs() < 1e-12);
        assert!((rs.total_probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sorted_is_descending_and_deterministic() {
        let rs: ResultSet = [(o(3), 0.1), (o(1), 0.5), (o(2), 0.5)]
            .into_iter()
            .collect();
        let v = rs.sorted();
        assert_eq!(v[0].object, o(1)); // tie broken by id
        assert_eq!(v[1].object, o(2));
        assert_eq!(v[2].object, o(3));
        assert_eq!(rs.top(2).len(), 2);
    }

    #[test]
    fn zero_probability_not_inserted() {
        let mut rs = ResultSet::new();
        rs.add(o(1), 0.0);
        assert!(rs.is_empty());
        assert_eq!(rs.probability(o(1)), 0.0);
    }
}
