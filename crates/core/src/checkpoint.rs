//! Crash-safe checkpointing of the [`crate::IndoorQuerySystem`].
//!
//! The system's recoverable state — collector timelines, particle cache,
//! master RNG stream and cumulative metrics — serializes through the
//! canonical `ripq-persist` codec into one framed snapshot file,
//! `system.ckpt`, written atomically on a configurable ingest cadence.
//! On startup [`crate::IndoorQuerySystem::recover`] reloads it; damaged
//! files (torn, bit-flipped, stale version) are quarantined to
//! `system.ckpt.corrupt` and the run cold-starts instead of trusting
//! them. Because the snapshot captures state *before* the due second is
//! ingested, replaying the reading-store suffix from
//! [`RecoveryOutcome::Resumed::replay_from`] reproduces an uninterrupted
//! run bit for bit under [`crate::clock::TimingMode::Logical`].

use crate::RipqError;
use ripq_obs::{HistogramSnapshot, MetricsSnapshot, SpanStat};
use ripq_persist::{ByteReader, ByteWriter, PersistError};
use std::path::{Path, PathBuf};

/// File name of the system snapshot inside the checkpoint directory.
pub const SNAPSHOT_FILE: &str = "system.ckpt";

/// File name of the landmark distance-oracle snapshot (written alongside
/// the system snapshot when the ALT backend is active, so a recovered —
/// or freshly started — run skips the landmark precomputation).
pub const ORACLE_FILE: &str = "oracle.ckpt";

/// Full path of the snapshot file for a checkpoint directory.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Full path of the oracle snapshot for a checkpoint directory.
pub fn oracle_path(dir: &Path) -> PathBuf {
    dir.join(ORACLE_FILE)
}

/// What [`crate::IndoorQuerySystem::recover`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// No snapshot existed — nothing to restore, start from scratch.
    ColdStart,
    /// A valid snapshot was restored. Re-ingest the reading store from
    /// `replay_from` (inclusive) to catch up to the present.
    Resumed {
        /// First second whose readings are *not* covered by the snapshot.
        replay_from: u64,
    },
    /// The snapshot was damaged (torn, corrupt, or written by another
    /// format version); it was moved aside to `path` and the system
    /// cold-starts with a full rebuild.
    Quarantined {
        /// Where the damaged file was moved (`system.ckpt.corrupt`).
        path: PathBuf,
    },
}

/// Maps a persistence failure into the engine's error currency.
pub(crate) fn persist_io(err: &PersistError) -> RipqError {
    RipqError::Io(err.to_string())
}

/// Appends a [`MetricsSnapshot`] to `w` in the canonical encoding. All
/// four families are `BTreeMap`s, so iteration (and therefore the byte
/// stream) is name-ordered and canonical.
pub fn encode_metrics(w: &mut ByteWriter, snap: &MetricsSnapshot) {
    w.put_seq_len(snap.counters.len());
    for (name, value) in &snap.counters {
        w.put_str(name);
        w.put_u64(*value);
    }
    w.put_seq_len(snap.gauges.len());
    for (name, value) in &snap.gauges {
        w.put_str(name);
        w.put_u64(*value);
    }
    w.put_seq_len(snap.histograms.len());
    for (name, h) in &snap.histograms {
        w.put_str(name);
        w.put_u64(h.count);
        w.put_u64(h.sum);
        w.put_u64(h.min);
        w.put_u64(h.max);
        w.put_seq_len(h.buckets.len());
        for (bound, hits) in &h.buckets {
            w.put_u64(*bound);
            w.put_u64(*hits);
        }
    }
    w.put_seq_len(snap.spans.len());
    for (path, s) in &snap.spans {
        w.put_str(path);
        w.put_u64(s.count);
        w.put_u64(s.total_micros);
    }
}

/// Decodes a [`MetricsSnapshot`] written by [`encode_metrics`]. Any
/// truncation is [`PersistError::Torn`], never a panic.
pub fn decode_metrics(r: &mut ByteReader<'_>) -> Result<MetricsSnapshot, PersistError> {
    let mut snap = MetricsSnapshot::default();
    let n = r.get_seq_len(12)?;
    for _ in 0..n {
        let name = r.get_str()?;
        snap.counters.insert(name, r.get_u64()?);
    }
    let n = r.get_seq_len(12)?;
    for _ in 0..n {
        let name = r.get_str()?;
        snap.gauges.insert(name, r.get_u64()?);
    }
    let n = r.get_seq_len(40)?;
    for _ in 0..n {
        let name = r.get_str()?;
        let count = r.get_u64()?;
        let sum = r.get_u64()?;
        let min = r.get_u64()?;
        let max = r.get_u64()?;
        let n_buckets = r.get_seq_len(16)?;
        let mut buckets = Vec::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            buckets.push((r.get_u64()?, r.get_u64()?));
        }
        snap.histograms.insert(
            name,
            HistogramSnapshot {
                count,
                sum,
                min,
                max,
                buckets,
            },
        );
    }
    let n = r.get_seq_len(20)?;
    for _ in 0..n {
        let path = r.get_str()?;
        let count = r.get_u64()?;
        let total_micros = r.get_u64()?;
        snap.spans.insert(
            path,
            SpanStat {
                count,
                total_micros,
            },
        );
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_obs::Recorder;
    use std::time::Duration;

    fn sample() -> MetricsSnapshot {
        let rec = Recorder::enabled();
        rec.add("collector.entries_aggregated", 12);
        rec.add("pf.resamples", 3);
        rec.set_gauge("cache.entries", 4);
        rec.observe("pf.ess", 48);
        rec.observe("pf.ess", 64);
        rec.record_span("evaluate", Duration::from_micros(120));
        rec.record_span("evaluate/queries/range", Duration::from_micros(40));
        rec.snapshot()
    }

    #[test]
    fn metrics_codec_round_trips_and_is_canonical() {
        let snap = sample();
        let mut w = ByteWriter::new();
        encode_metrics(&mut w, &snap);
        let bytes = w.into_bytes();

        let mut w2 = ByteWriter::new();
        encode_metrics(&mut w2, &sample());
        assert_eq!(bytes, w2.into_bytes(), "encoding is not canonical");

        let mut r = ByteReader::new(&bytes);
        let decoded = decode_metrics(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.to_json(), snap.to_json());
    }

    #[test]
    fn empty_metrics_round_trip() {
        let mut w = ByteWriter::new();
        encode_metrics(&mut w, &MetricsSnapshot::default());
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_metrics(&mut r).unwrap(), MetricsSnapshot::default());
        r.finish().unwrap();
    }

    #[test]
    fn truncated_metrics_are_torn_not_a_panic() {
        let mut w = ByteWriter::new();
        encode_metrics(&mut w, &sample());
        let bytes = w.into_bytes();
        for cut in [0, 1, 5, bytes.len() / 3, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert_eq!(
                decode_metrics(&mut r).unwrap_err(),
                PersistError::Torn,
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn snapshot_path_joins_file_name() {
        assert_eq!(
            snapshot_path(Path::new("/tmp/ckpts")),
            PathBuf::from("/tmp/ckpts/system.ckpt")
        );
    }
}
