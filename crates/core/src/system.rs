//! The end-to-end system facade (Fig. 3 of the paper).

use crate::checkpoint::{self, RecoveryOutcome};
use crate::clock::{Clock, TimingMode};
use crate::{
    evaluate_closest_pairs, evaluate_closest_pairs_with_oracle, evaluate_knn_with_oracle,
    evaluate_knn_with_paths, evaluate_ptknn, evaluate_ptknn_with_oracle, evaluate_range,
    prune_knn_candidates_with_oracle, prune_knn_candidates_with_paths, prune_range_candidates,
    ClosestPairsQuery, CoreError, KnnQuery, ObjectPair, PtknnQuery, QueryId, RangeQuery, ResultSet,
    RipqError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripq_floorplan::FloorPlan;
use ripq_geom::{Point2, Rect};
use ripq_graph::{
    build_walking_graph, AnchorObjectIndex, AnchorSet, DistanceBackend, DistanceOracle,
    OracleError, ShortestPathCache, ShortestPaths, WalkingGraph, DEFAULT_LANDMARKS,
};
use ripq_obs::{MetricsSnapshot, Recorder};
use ripq_persist::{
    load_snapshot, quarantine, seal_snapshot, write_atomic, ByteReader, ByteWriter, PersistError,
};
use ripq_pf::{
    CacheStats, DegradationLevel, ParticleCache, ParticlePreprocessor, PreprocessorConfig,
    SharedParticleCache, SupervisionOptions,
};
use ripq_rfid::{deploy_uniform, DataCollector, ObjectId, RawReading, Reader, ReaderId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of an [`IndoorQuerySystem`]. Defaults match Table 2 of
/// the paper (64 particles, 19 readers, 2 m activation range, …).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of RFID readers deployed uniformly on hallways (paper: 19).
    pub reader_count: u32,
    /// Reader activation range in meters (Table 2 default: 2 m).
    pub activation_range: f64,
    /// Anchor point spacing in meters (§4.2 suggests 1 m).
    pub anchor_spacing: f64,
    /// Maximum walking speed `u_max` (m/s) for uncertain-region pruning.
    pub max_speed: f64,
    /// Particle filter configuration (Table 2 default: 64 particles).
    pub preprocess: PreprocessorConfig,
    /// Enable the cache management module (§4.5).
    pub use_cache: bool,
    /// Enable the query-aware optimization module (§4.3). Disable for
    /// ablation benchmarks: every known object is then preprocessed.
    pub prune_candidates: bool,
    /// Monte-Carlo rounds per PTkNN query evaluation.
    pub ptknn_rounds: usize,
    /// Worker threads for particle-filter preprocessing. `None` (or
    /// `Some(0|1)`) runs on the calling thread. Results are bit-identical
    /// for every setting: each object draws from its own RNG stream (see
    /// [`ripq_pf::derive_stream_seed`]).
    pub parallelism: Option<usize>,
    /// Out-of-order tolerance of the reading pipeline, in seconds:
    /// readings handed to [`IndoorQuerySystem::ingest_delivery`] whose
    /// logical second lags the delivery clock by at most this much are
    /// merged back into the aggregated timeline instead of being dropped.
    /// `0` (default) keeps the strict in-order ingestion contract.
    pub reorder_window: u64,
    /// How [`EvaluationTimings`] are measured. [`TimingMode::Wall`]
    /// (default) reads the real clock; [`TimingMode::Logical`] uses a
    /// deterministic tick counter so whole reports are bit-identical
    /// across runs.
    pub timing: TimingMode,
    /// Collect pipeline metrics (`ripq_obs`). When on, every
    /// [`EvaluationReport`] carries a cumulative [`MetricsSnapshot`];
    /// under [`TimingMode::Logical`] the snapshot is bit-identical
    /// across runs and worker counts. Off (default) the recorder is
    /// disabled and every instrument point is a no-op branch.
    pub observability: bool,
    /// Durable-checkpoint cadence in ingested seconds: when non-zero and
    /// a checkpoint directory is configured (see
    /// [`IndoorQuerySystem::set_checkpoint_dir`]), a snapshot is written
    /// atomically at the *start* of ingesting every due second, so it
    /// covers exactly the seconds before it. `0` (default) disables
    /// automatic checkpointing; [`IndoorQuerySystem::checkpoint_now`]
    /// still works.
    pub checkpoint_every: u64,
    /// How network distances are produced during candidate pruning and
    /// query evaluation. [`DistanceBackend::Dijkstra`] (default) runs the
    /// original memoized full-tree searches;  [`DistanceBackend::Alt`]
    /// routes them through the landmark [`DistanceOracle`] — goal-directed
    /// ALT point-to-point queries and truncated ascending anchor scans —
    /// with bit-identical answers (the differential suite in
    /// `tests/oracle.rs` pins this). The backend never changes results,
    /// only how much graph is searched to produce them.
    pub distance_backend: DistanceBackend,
    /// Per-evaluation deadline budget in deterministic logical cost units
    /// (`coast seconds × particle count` per object). When the remaining
    /// budget cannot afford an object's full particle filter, evaluation
    /// degrades down the ladder — reduced particle count, then the
    /// paper's uncertainty-region uniform fallback — instead of missing
    /// the deadline. `None` (default) never degrades.
    pub query_budget: Option<u64>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            reader_count: 19,
            activation_range: 2.0,
            anchor_spacing: 1.0,
            max_speed: 1.5,
            preprocess: PreprocessorConfig::default(),
            use_cache: true,
            prune_candidates: true,
            ptknn_rounds: 200,
            parallelism: None,
            reorder_window: 0,
            timing: TimingMode::Wall,
            observability: false,
            distance_backend: DistanceBackend::Dijkstra,
            checkpoint_every: 0,
            query_budget: None,
        }
    }
}

/// Timing breakdown of one evaluation pass, measured by the clock that
/// [`SystemConfig::timing`] selects (wall clock or deterministic ticks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvaluationTimings {
    /// Candidate pruning (§4.3).
    pub pruning: Duration,
    /// Particle-filter preprocessing (§4.4) including cache traffic.
    pub preprocessing: Duration,
    /// Query evaluation over the index (§4.6).
    pub evaluation: Duration,
    /// End-to-end.
    pub total: Duration,
}

/// The result of one evaluation pass over all registered queries.
///
/// Result maps are `BTreeMap`s so that iterating a report visits queries
/// in `QueryId` order — reports serialize and diff deterministically.
#[derive(Debug)]
pub struct EvaluationReport {
    /// Result set per registered range query.
    pub range_results: BTreeMap<QueryId, ResultSet>,
    /// Result set per registered kNN query.
    pub knn_results: BTreeMap<QueryId, ResultSet>,
    /// Result set per registered PTkNN query.
    pub ptknn_results: BTreeMap<QueryId, ResultSet>,
    /// Result pairs per registered closest-pairs query.
    pub closest_pairs_results: BTreeMap<QueryId, Vec<ObjectPair>>,
    /// The filtered probabilistic index (`APtoObjHT`) the results came
    /// from — exposed for accuracy metrics and debugging.
    pub index: AnchorObjectIndex<ObjectId>,
    /// How many objects survived candidate pruning and were preprocessed.
    pub candidates_processed: usize,
    /// How many objects the collector knows in total.
    pub objects_known: usize,
    /// Cache statistics accumulated so far (zeros when caching is off).
    pub cache_stats: CacheStats,
    /// Wall-clock breakdown of this pass.
    pub timings: EvaluationTimings,
    /// Cumulative pipeline metrics since system construction —
    /// `Some` iff [`SystemConfig::observability`] is on.
    pub metrics: Option<MetricsSnapshot>,
    /// How trustworthy each query's answer is: the worst
    /// [`DegradationLevel`] over the objects appearing in its results.
    /// All-[`DegradationLevel::Full`] unless the deadline budget ran out
    /// or a particle-filter worker was quarantined this pass.
    pub degradation: BTreeMap<QueryId, DegradationLevel>,
    /// Per-object answer quality from this pass's supervised
    /// preprocessing, for callers that inspect the index directly.
    pub object_degradation: BTreeMap<ObjectId, DegradationLevel>,
}

/// The RFID + particle-filter indoor spatial query evaluation system.
///
/// Owns the full pipeline of Fig. 3. Typical use:
///
/// 1. build with [`IndoorQuerySystem::new`];
/// 2. feed readings each second via [`IndoorQuerySystem::ingest_detections`]
///    (pre-aggregated) or [`IndoorQuerySystem::ingest_raw`] (sample level);
/// 3. register queries; call [`IndoorQuerySystem::evaluate`].
pub struct IndoorQuerySystem {
    plan: FloorPlan,
    graph: WalkingGraph,
    anchors: AnchorSet,
    readers: Vec<Reader>,
    collector: DataCollector,
    cache: ParticleCache,
    config: SystemConfig,
    recorder: Recorder,
    rng: StdRng,
    /// Memoized Dijkstra trees keyed by source position, shared by query
    /// registration and per-pass candidate pruning.
    sp_cache: ShortestPathCache,
    /// Landmark distance oracle, built lazily on the first evaluation
    /// under [`DistanceBackend::Alt`] (or restored from `oracle.ckpt` by
    /// recovery) and shared read-only across the pass.
    oracle: Option<Arc<DistanceOracle>>,
    /// The *incrementally maintained* `APtoObjHT`: each evaluation pass
    /// retracts objects that left the answered candidate set and applies
    /// fresh distributions as deltas, instead of rebuilding from scratch.
    /// Reports clone it, so its content always equals a rebuild.
    live_index: AnchorObjectIndex<ObjectId>,
    // Query registries are ordered maps: evaluation visits queries in
    // registration (QueryId) order, so shared state touched per query —
    // most importantly the master RNG consumed by PTkNN sampling — sees
    // the same sequence every run.
    range_queries: BTreeMap<QueryId, RangeQuery>,
    knn_queries: BTreeMap<QueryId, KnnQuery>,
    /// Dijkstra results for registered kNN queries' fixed points, computed
    /// once at registration and reused every evaluation pass.
    knn_paths: BTreeMap<QueryId, Arc<ShortestPaths>>,
    ptknn_queries: BTreeMap<QueryId, PtknnQuery>,
    closest_pairs_queries: BTreeMap<QueryId, ClosestPairsQuery>,
    next_query: u32,
    /// Where durable snapshots go; `None` disables all checkpoint IO.
    checkpoint_dir: Option<PathBuf>,
    /// Latest second any ingest entry point has seen, i.e. the recovery
    /// watermark a snapshot covers through.
    last_ingest_second: Option<u64>,
    /// Base of the checkpoint cadence: the due second of the most recent
    /// automatic checkpoint (restored on recovery so the cadence
    /// continues exactly where the previous life left it).
    last_checkpoint_second: Option<u64>,
    /// Rendered error of the most recent failed best-effort checkpoint.
    last_checkpoint_error: Option<String>,
    /// Test-support fault injection: panic the particle filter of this
    /// object for its first N attempts per pass.
    injected_fault: Option<(ObjectId, usize)>,
}

impl IndoorQuerySystem {
    /// Builds the system for a floor plan: walking graph, anchor set and a
    /// uniform reader deployment per `config`. `seed` fixes all stochastic
    /// behavior (particle filtering) for reproducibility.
    pub fn new(plan: FloorPlan, config: SystemConfig, seed: u64) -> Self {
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, config.anchor_spacing);
        let readers = deploy_uniform(&plan, &graph, config.reader_count, config.activation_range);
        let recorder = Recorder::from_flag(config.observability);
        let mut collector = DataCollector::new();
        collector.set_recorder(&recorder);
        collector.set_reorder_window(config.reorder_window);
        IndoorQuerySystem {
            plan,
            graph,
            anchors,
            readers,
            collector,
            cache: ParticleCache::new(),
            config,
            recorder,
            rng: StdRng::seed_from_u64(seed),
            sp_cache: ShortestPathCache::new(),
            oracle: None,
            live_index: AnchorObjectIndex::new(),
            range_queries: BTreeMap::new(),
            knn_queries: BTreeMap::new(),
            knn_paths: BTreeMap::new(),
            ptknn_queries: BTreeMap::new(),
            closest_pairs_queries: BTreeMap::new(),
            next_query: 0,
            checkpoint_dir: None,
            last_ingest_second: None,
            last_checkpoint_second: None,
            last_checkpoint_error: None,
            injected_fault: None,
        }
    }

    /// The floor plan.
    pub fn plan(&self) -> &FloorPlan {
        &self.plan
    }

    /// The walking graph.
    pub fn graph(&self) -> &WalkingGraph {
        &self.graph
    }

    /// The anchor set.
    pub fn anchors(&self) -> &AnchorSet {
        &self.anchors
    }

    /// The reader deployment.
    pub fn readers(&self) -> &[Reader] {
        &self.readers
    }

    /// The data collector (read access).
    pub fn collector(&self) -> &DataCollector {
        &self.collector
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The landmark distance oracle, if one has been built or restored —
    /// `None` until the first evaluation under [`DistanceBackend::Alt`].
    pub fn distance_oracle(&self) -> Option<&DistanceOracle> {
        self.oracle.as_deref()
    }

    /// The oracle for this graph, building (and memoizing) it on first
    /// use. Precomputation is [`DEFAULT_LANDMARKS`] Dijkstra passes — paid
    /// once per system (or restored from a checkpoint), then amortized by
    /// every truncated search.
    fn ensure_oracle(&mut self) -> Arc<DistanceOracle> {
        if let Some(oracle) = &self.oracle {
            return Arc::clone(oracle);
        }
        let oracle = Arc::new(DistanceOracle::build(&self.graph, DEFAULT_LANDMARKS));
        self.recorder.add("oracle.builds", 1);
        self.oracle = Some(Arc::clone(&oracle));
        oracle
    }

    /// Ingests pre-aggregated detections for one second.
    pub fn ingest_detections(&mut self, second: u64, detections: &[(ObjectId, ReaderId)]) {
        self.maybe_checkpoint(second);
        self.collector.ingest_second(second, detections);
        self.note_ingest(second);
    }

    /// Ingests raw sample-level readings for one second.
    pub fn ingest_raw(&mut self, second: u64, raw: &[RawReading]) {
        self.maybe_checkpoint(second);
        self.collector.ingest_raw_second(second, raw);
        self.note_ingest(second);
    }

    /// Ingests delivery-tagged readings from a degraded transport: each
    /// `(logical_second, object, reader)` triple may arrive up to
    /// [`SystemConfig::reorder_window`] seconds after its logical second
    /// and is merged back into place; exact duplicates are discarded
    /// idempotently. Call [`IndoorQuerySystem::flush_readings_through`]
    /// with the final watermark before evaluating at the stream's end.
    pub fn ingest_delivery(
        &mut self,
        delivery_second: u64,
        readings: &[(u64, ObjectId, ReaderId)],
    ) {
        self.maybe_checkpoint(delivery_second);
        self.collector.ingest_delivery(delivery_second, readings);
        self.note_ingest(delivery_second);
    }

    /// Finalizes all buffered readings with logical second ≤ `second`
    /// (the delivery watermark), feeding them — silent seconds included —
    /// into the aggregated timeline in order.
    pub fn flush_readings_through(&mut self, second: u64) {
        self.collector.flush_through(second);
    }

    /// Registers a known reader downtime window `[from, until]` with the
    /// collector: silence from that reader during the window no longer
    /// emits LEAVE events, and same-reader re-detections across it
    /// continue their episode.
    pub fn note_reader_outage(&mut self, reader: ReaderId, from: u64, until: u64) {
        self.collector.note_outage(reader, from, until);
    }

    /// Registers a range query.
    pub fn register_range(&mut self, window: Rect) -> Result<QueryId, CoreError> {
        let id = QueryId::new(self.next_query);
        let q = RangeQuery::new(id, window)?;
        self.next_query += 1;
        self.range_queries.insert(id, q);
        Ok(id)
    }

    /// Registers a kNN query. Under the Dijkstra backend the query
    /// point's Dijkstra pass is computed now and reused on every
    /// [`IndoorQuerySystem::evaluate`]; under ALT the oracle's lazy scan
    /// serves the point directly and no tree is built.
    pub fn register_knn(&mut self, point: Point2, k: usize) -> Result<QueryId, CoreError> {
        let id = QueryId::new(self.next_query);
        let q = KnnQuery::new(id, point, k)?;
        self.next_query += 1;
        if self.config.distance_backend == DistanceBackend::Dijkstra {
            let sp = self.sp_cache.paths(&self.graph, self.graph.project(point));
            self.knn_paths.insert(id, sp);
        }
        self.knn_queries.insert(id, q);
        Ok(id)
    }

    /// Registers a probabilistic-threshold kNN query (Yang et al.'s
    /// PTkNN, evaluated by possible-worlds sampling).
    pub fn register_ptknn(
        &mut self,
        point: Point2,
        k: usize,
        threshold: f64,
    ) -> Result<QueryId, CoreError> {
        let q = PtknnQuery::new(point, k, threshold)?;
        let id = QueryId::new(self.next_query);
        self.next_query += 1;
        self.ptknn_queries.insert(id, q);
        Ok(id)
    }

    /// Registers a closest-pairs query (§6 future work).
    pub fn register_closest_pairs(
        &mut self,
        m: usize,
        contact_radius: f64,
    ) -> Result<QueryId, CoreError> {
        let id = QueryId::new(self.next_query);
        self.next_query += 1;
        self.closest_pairs_queries
            .insert(id, ClosestPairsQuery { m, contact_radius });
        Ok(id)
    }

    /// Removes a registered query.
    pub fn deregister(&mut self, id: QueryId) -> Result<(), CoreError> {
        self.knn_paths.remove(&id);
        if self.range_queries.remove(&id).is_some()
            || self.knn_queries.remove(&id).is_some()
            || self.ptknn_queries.remove(&id).is_some()
            || self.closest_pairs_queries.remove(&id).is_some()
        {
            Ok(())
        } else {
            Err(CoreError::UnknownQuery(id.raw()))
        }
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.range_queries.len()
            + self.knn_queries.len()
            + self.ptknn_queries.len()
            + self.closest_pairs_queries.len()
    }

    /// Runs the full pipeline at time `now`: candidate pruning →
    /// particle-filter preprocessing (with cache) → query evaluation.
    pub fn evaluate(&mut self, now: u64) -> EvaluationReport {
        self.evaluate_budgeted(now, self.config.query_budget)
    }

    /// [`IndoorQuerySystem::evaluate`] with a per-pass deadline budget
    /// overriding [`SystemConfig::query_budget`] for this call only —
    /// the hook behind per-request deadlines in the streaming server.
    /// `None` disables budgeting for the pass even when the config sets
    /// a budget; callers wanting the configured default should use
    /// [`IndoorQuerySystem::evaluate`].
    pub fn evaluate_budgeted(&mut self, now: u64, budget: Option<u64>) -> EvaluationReport {
        let clock = Clock::new(self.config.timing);
        let t_start = clock.now();
        let objects_known = self.collector.objects().count();
        // Under the ALT backend every network-distance consumer below goes
        // through the oracle; answers are bit-identical either way.
        let oracle: Option<Arc<DistanceOracle>> =
            (self.config.distance_backend == DistanceBackend::Alt).then(|| self.ensure_oracle());

        // 1. Query-aware optimization (§4.3). Per-rule counters record
        // how many candidates each pruning rule admitted (pre-dedup).
        let t_prune = clock.now();
        let candidates: Vec<ObjectId> = if self.config.prune_candidates {
            let windows: Vec<Rect> = self.range_queries.values().map(|q| q.window).collect();
            let mut c = prune_range_candidates(
                &self.collector,
                &self.readers,
                &windows,
                now,
                self.config.max_speed,
            );
            self.recorder
                .add("optimizer.candidates_rule_range", c.len() as u64);
            let mut from_knn = 0u64;
            for (id, q) in &self.knn_queries {
                let picked = match &oracle {
                    Some(or) => prune_knn_candidates_with_oracle(
                        &self.graph,
                        &self.collector,
                        &self.readers,
                        q,
                        now,
                        self.config.max_speed,
                        or,
                    ),
                    None => prune_knn_candidates_with_paths(
                        &self.graph,
                        &self.collector,
                        &self.readers,
                        q,
                        now,
                        self.config.max_speed,
                        &self.knn_paths[id],
                    ),
                };
                from_knn += picked.len() as u64;
                c.extend(picked);
            }
            self.recorder.add("optimizer.candidates_rule_knn", from_knn);
            // PTkNN pruning reuses the kNN bound; closest-pairs queries
            // are global and keep every object. The Dijkstra tree of each
            // fixed query point is memoized across passes (the oracle
            // memoizes per (source, reader) pair instead).
            let mut from_ptknn = 0u64;
            for q in self.ptknn_queries.values() {
                let as_knn = KnnQuery {
                    id: QueryId::new(u32::MAX),
                    point: q.point,
                    k: q.k,
                };
                let picked = match &oracle {
                    Some(or) => prune_knn_candidates_with_oracle(
                        &self.graph,
                        &self.collector,
                        &self.readers,
                        &as_knn,
                        now,
                        self.config.max_speed,
                        or,
                    ),
                    None => {
                        let sp = self
                            .sp_cache
                            .paths(&self.graph, self.graph.project(q.point));
                        prune_knn_candidates_with_paths(
                            &self.graph,
                            &self.collector,
                            &self.readers,
                            &as_knn,
                            now,
                            self.config.max_speed,
                            &sp,
                        )
                    }
                };
                from_ptknn += picked.len() as u64;
                c.extend(picked);
            }
            self.recorder
                .add("optimizer.candidates_rule_ptknn", from_ptknn);
            if !self.closest_pairs_queries.is_empty() {
                let before = c.len();
                c.extend(self.collector.objects());
                self.recorder.add(
                    "optimizer.candidates_rule_closest_pairs",
                    (c.len() - before) as u64,
                );
            }
            c.sort_unstable();
            c.dedup();
            c
        } else {
            let mut c: Vec<ObjectId> = self.collector.objects().collect();
            c.sort_unstable();
            c
        };
        self.recorder
            .set_gauge("optimizer.objects_known", objects_known as u64);
        self.recorder
            .set_gauge("optimizer.candidates", candidates.len() as u64);
        self.recorder.set_gauge(
            "optimizer.pruned",
            objects_known.saturating_sub(candidates.len()) as u64,
        );

        let pruning = clock.since(t_prune);
        self.recorder.record_span("evaluate/prune", pruning);

        // 2. Particle-filter preprocessing (§4.4) + cache (§4.5).
        // One pass seed is drawn from the master RNG; every candidate then
        // filters on its own stream derived from (pass seed, object,
        // resume timestamp), so the outcome is identical whatever
        // `config.parallelism` says.
        let t_pre = clock.now();
        let pass_seed: u64 = self.rng.random();
        let preprocessor = ParticlePreprocessor::new(
            &self.graph,
            &self.anchors,
            &self.readers,
            self.config.preprocess,
        )
        .with_recorder(&self.recorder);
        let cache = self.config.use_cache.then(|| self.cache.shared());
        let supervision = SupervisionOptions {
            budget,
            panic_object: self.injected_fault.map(|(o, _)| o),
            panic_attempts: self.injected_fault.map_or(1, |(_, a)| a),
            ..SupervisionOptions::default()
        };
        let (object_degradation, delta) = preprocessor.process_supervised_into(
            pass_seed,
            &self.collector,
            &candidates,
            now,
            cache,
            self.config.parallelism,
            &supervision,
            &mut self.live_index,
        );
        self.recorder.add("index.delta_applied", delta.applied);
        self.recorder.add("index.delta_retracted", delta.retracted);
        self.recorder.add("index.delta_unchanged", delta.unchanged);
        let index = self.live_index.clone();
        let preprocessing = clock.since(t_pre);
        self.recorder
            .record_span("evaluate/preprocess", preprocessing);

        // 3. Query evaluation (§4.6). With observability on, each query
        // records a span under its algorithm's path — Algorithm 3 is
        // `range`, Algorithm 4 is `knn` — timed by the same clock as the
        // coarse timings (extra clock reads only happen when enabled, so
        // the disabled hot path is untouched).
        let obs_on = self.recorder.is_enabled();
        let t_eval = clock.now();
        let mut range_results = BTreeMap::new();
        for (id, q) in &self.range_queries {
            let t_q = obs_on.then(|| clock.now());
            range_results.insert(
                *id,
                evaluate_range(&self.plan, &self.anchors, &index, &q.window),
            );
            if let Some(t_q) = t_q {
                self.recorder
                    .record_span("evaluate/queries/range", clock.since(t_q));
            }
        }
        let mut knn_results = BTreeMap::new();
        for (id, q) in &self.knn_queries {
            let t_q = obs_on.then(|| clock.now());
            let rs = match &oracle {
                Some(or) => evaluate_knn_with_oracle(&self.graph, &self.anchors, &index, q, or),
                None => {
                    let sp = &self.knn_paths[id];
                    evaluate_knn_with_paths(&self.graph, &self.anchors, &index, q, sp)
                }
            };
            knn_results.insert(*id, rs);
            if let Some(t_q) = t_q {
                self.recorder
                    .record_span("evaluate/queries/knn", clock.since(t_q));
            }
        }
        let mut ptknn_results = BTreeMap::new();
        for (id, q) in &self.ptknn_queries {
            let t_q = obs_on.then(|| clock.now());
            let rs = match &oracle {
                Some(or) => evaluate_ptknn_with_oracle(
                    &mut self.rng,
                    &self.graph,
                    &self.anchors,
                    &index,
                    q,
                    self.config.ptknn_rounds,
                    or,
                ),
                None => evaluate_ptknn(
                    &mut self.rng,
                    &self.graph,
                    &self.anchors,
                    &index,
                    q,
                    self.config.ptknn_rounds,
                ),
            };
            ptknn_results.insert(*id, rs);
            if let Some(t_q) = t_q {
                self.recorder
                    .record_span("evaluate/queries/ptknn", clock.since(t_q));
            }
        }
        let mut closest_pairs_results = BTreeMap::new();
        for (id, q) in &self.closest_pairs_queries {
            let t_q = obs_on.then(|| clock.now());
            let pairs = match &oracle {
                Some(or) => {
                    evaluate_closest_pairs_with_oracle(&self.graph, &self.anchors, &index, q, or)
                }
                None => evaluate_closest_pairs(&self.graph, &self.anchors, &index, q),
            };
            closest_pairs_results.insert(*id, pairs);
            if let Some(t_q) = t_q {
                self.recorder
                    .record_span("evaluate/queries/closest_pairs", clock.since(t_q));
            }
        }

        let evaluation = clock.since(t_eval);
        self.recorder.record_span("evaluate/queries", evaluation);

        // Cache-manager and shortest-path-cache levels, mirrored as
        // gauges from this single-threaded point.
        let cache_stats = self.cache.stats();
        if obs_on {
            self.recorder.set_gauge("cache.hits", cache_stats.hits);
            self.recorder.set_gauge("cache.misses", cache_stats.misses);
            self.recorder
                .set_gauge("cache.invalidations", cache_stats.invalidations);
            self.recorder
                .set_gauge("cache.entries", self.cache.len() as u64);
            let sp = self.sp_cache.stats();
            self.recorder.set_gauge("spcache.memo_hits", sp.hits);
            self.recorder.set_gauge("spcache.misses", sp.misses);
            self.recorder
                .set_gauge("spcache.entries", self.sp_cache.len() as u64);
            if let Some(or) = &oracle {
                let os = or.stats();
                self.recorder
                    .set_gauge("oracle.p2p_queries", os.p2p_queries);
                self.recorder
                    .set_gauge("oracle.p2p_memo_hits", os.p2p_memo_hits);
                self.recorder
                    .set_gauge("oracle.p2p_settled", os.p2p_settled);
                self.recorder
                    .set_gauge("oracle.scan_queries", os.scan_queries);
                self.recorder
                    .set_gauge("oracle.scan_settled", os.scan_settled);
                self.recorder
                    .set_gauge("oracle.scan_anchor_candidates", os.scan_anchor_candidates);
                self.recorder
                    .set_gauge("oracle.landmarks", or.landmarks().len() as u64);
            }
        }

        let total = clock.since(t_start);
        self.recorder.record_span("evaluate", total);

        // Tag every answer with the worst degradation level among the
        // objects it reports — a query whose results only involve fully
        // filtered objects stays `Full` even if others degraded.
        let tag = |objects: &mut dyn Iterator<Item = ObjectId>| -> DegradationLevel {
            objects
                .filter_map(|o| object_degradation.get(&o).copied())
                .max()
                .unwrap_or(DegradationLevel::Full)
        };
        let mut degradation = BTreeMap::new();
        for (id, rs) in range_results
            .iter()
            .chain(knn_results.iter())
            .chain(ptknn_results.iter())
        {
            degradation.insert(*id, tag(&mut rs.iter().map(|(o, _)| o)));
        }
        for (id, pairs) in &closest_pairs_results {
            degradation.insert(*id, tag(&mut pairs.iter().flat_map(|p| [p.a, p.b])));
        }

        EvaluationReport {
            range_results,
            knn_results,
            ptknn_results,
            closest_pairs_results,
            index,
            candidates_processed: candidates.len(),
            objects_known,
            cache_stats,
            timings: EvaluationTimings {
                pruning,
                preprocessing,
                evaluation,
                total,
            },
            metrics: obs_on.then(|| self.recorder.snapshot()),
            degradation,
            object_degradation,
        }
    }

    /// The observability recorder — disabled (all no-ops) unless
    /// [`SystemConfig::observability`] is set. Exposed so callers can
    /// fold their own metrics into the same snapshot.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Configures where durable snapshots are written. Automatic
    /// checkpointing additionally needs
    /// [`SystemConfig::checkpoint_every`] > 0; explicit
    /// [`IndoorQuerySystem::checkpoint_now`] calls only need the
    /// directory.
    pub fn set_checkpoint_dir(&mut self, dir: impl Into<PathBuf>) {
        self.checkpoint_dir = Some(dir.into());
    }

    /// The configured checkpoint directory, if any.
    pub fn checkpoint_dir(&self) -> Option<&Path> {
        self.checkpoint_dir.as_deref()
    }

    /// The rendered error of the most recent failed best-effort automatic
    /// checkpoint, if any. Automatic checkpoints never abort ingestion;
    /// they count `recovery.checkpoint_errors` and park the message here.
    pub fn last_checkpoint_error(&self) -> Option<&str> {
        self.last_checkpoint_error.as_deref()
    }

    /// Test support: make the particle filter of `object` panic on its
    /// first `attempts` attempts of every evaluation pass, exercising the
    /// supervised retry/quarantine path through the full facade.
    #[doc(hidden)]
    pub fn inject_preprocess_fault(&mut self, object: ObjectId, attempts: usize) {
        self.injected_fault = Some((object, attempts));
    }

    /// Writes a durable snapshot of the recoverable system state —
    /// collector, particle cache, master RNG stream, cumulative metrics
    /// and the ingest watermark — to `<dir>/system.ckpt`, atomically
    /// (sibling temp file, fsync, rename). Requires a checkpoint
    /// directory; creates it if missing.
    pub fn checkpoint_now(&mut self) -> Result<(), RipqError> {
        let Some(dir) = self.checkpoint_dir.clone() else {
            return Err(RipqError::Io(
                "no checkpoint directory configured".to_string(),
            ));
        };
        std::fs::create_dir_all(&dir)
            .map_err(|e| RipqError::Io(format!("{}: {e}", dir.display())))?;
        let mut w = ByteWriter::new();
        self.encode_snapshot_payload(&mut w);
        let framed = seal_snapshot(&w.into_bytes());
        write_atomic(&checkpoint::snapshot_path(&dir), &framed)
            .map_err(|e| checkpoint::persist_io(&e))?;
        // Under the ALT backend the landmark tables ride along, so the
        // next life (or a CLI run pointed at the same directory) restores
        // them instead of re-running the landmark Dijkstra passes. The
        // tables are pure precomputation over the immutable graph —
        // losing this file costs a rebuild, never correctness.
        if self.config.distance_backend == DistanceBackend::Alt {
            let oracle = self.ensure_oracle();
            oracle
                .save(&checkpoint::oracle_path(&dir))
                .map_err(|e| checkpoint::persist_io(&e))?;
            self.recorder.add("oracle.checkpoints_written", 1);
        }
        self.recorder.add("recovery.checkpoints_written", 1);
        Ok(())
    }

    /// Attempts to restore the system from `<dir>/system.ckpt` and makes
    /// `dir` the checkpoint directory for this run.
    ///
    /// * A missing snapshot is a clean [`RecoveryOutcome::ColdStart`].
    /// * A valid snapshot restores collector, cache, RNG and metrics
    ///   exactly; the caller then replays its reading store from
    ///   [`RecoveryOutcome::Resumed::replay_from`]. Under
    ///   [`TimingMode::Logical`] the replayed run is bit-identical to an
    ///   uninterrupted one.
    /// * A damaged snapshot (torn write, bit rot, stale format version)
    ///   is moved aside to `system.ckpt.corrupt` and reported as
    ///   [`RecoveryOutcome::Quarantined`]; the system state is left
    ///   untouched for a cold rebuild.
    ///
    /// Registered queries are deliberately *not* part of the snapshot:
    /// re-register them (in the same order) before or after recovering,
    /// exactly as on a cold start.
    pub fn recover(&mut self, dir: impl Into<PathBuf>) -> Result<RecoveryOutcome, RipqError> {
        let dir = dir.into();
        let path = checkpoint::snapshot_path(&dir);
        self.restore_oracle(&dir);
        self.checkpoint_dir = Some(dir);
        let payload = match load_snapshot(&path) {
            Ok(p) => p,
            Err(PersistError::Missing) => {
                self.recorder.add("recovery.cold_start", 1);
                return Ok(RecoveryOutcome::ColdStart);
            }
            Err(PersistError::Io(msg)) => return Err(RipqError::Io(msg)),
            Err(_damaged) => return self.quarantine_snapshot(&path),
        };
        let mut r = ByteReader::new(&payload);
        match self.restore_snapshot_payload(&mut r) {
            Ok(replay_from) => {
                self.recorder.add("recovery.resumed", 1);
                Ok(RecoveryOutcome::Resumed { replay_from })
            }
            Err(_damaged) => self.quarantine_snapshot(&path),
        }
    }

    /// Best-effort restore of the landmark oracle from `oracle.ckpt`.
    /// A missing file is normal (Dijkstra backend, or no checkpoint yet);
    /// a damaged or graph-mismatched one is quarantined and the oracle is
    /// rebuilt lazily — oracle trouble never fails recovery, because the
    /// tables are rederivable precomputation, not state.
    fn restore_oracle(&mut self, dir: &Path) {
        if self.config.distance_backend != DistanceBackend::Alt {
            return;
        }
        let path = checkpoint::oracle_path(dir);
        match DistanceOracle::load(&path, &self.graph) {
            Ok(oracle) => {
                self.oracle = Some(Arc::new(oracle));
                self.recorder.add("oracle.restored", 1);
            }
            Err(OracleError::Persist(PersistError::Missing)) => {}
            Err(_damaged) => {
                let _ = quarantine(&path);
                self.recorder.add("oracle.quarantined", 1);
            }
        }
    }

    /// Moves a damaged snapshot aside and reports the quarantine.
    fn quarantine_snapshot(&mut self, path: &Path) -> Result<RecoveryOutcome, RipqError> {
        let moved = quarantine(path).map_err(|e| checkpoint::persist_io(&e))?;
        self.recorder.add("recovery.quarantined", 1);
        Ok(RecoveryOutcome::Quarantined { path: moved })
    }

    /// Serializes the recoverable state in the canonical snapshot layout:
    /// watermark, cadence base, collector, cache, RNG words, metrics.
    fn encode_snapshot_payload(&self, w: &mut ByteWriter) {
        w.put_opt_u64(self.last_ingest_second);
        w.put_opt_u64(self.last_checkpoint_second);
        self.collector.encode_state(w);
        self.cache.shared().encode_state(w);
        for word in self.rng.state() {
            w.put_u64(word);
        }
        checkpoint::encode_metrics(w, &self.recorder.snapshot());
    }

    /// Decodes and commits a snapshot payload. Everything is decoded into
    /// temporaries before any field is touched, so a torn payload leaves
    /// the system exactly as it was. Returns the replay start second.
    fn restore_snapshot_payload(&mut self, r: &mut ByteReader<'_>) -> Result<u64, PersistError> {
        let last_ingest = r.get_opt_u64()?;
        let last_checkpoint = r.get_opt_u64()?;
        let mut collector = DataCollector::decode_state(r)?;
        let cache = SharedParticleCache::decode_state(r)?;
        let rng_state = [r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?];
        let metrics = checkpoint::decode_metrics(r)?;
        if r.remaining() != 0 {
            return Err(PersistError::Torn);
        }
        collector.set_recorder(&self.recorder);
        self.collector = collector;
        self.cache = ParticleCache::from_shared(cache);
        self.rng = StdRng::from_state(rng_state);
        self.recorder.restore(&metrics);
        self.last_ingest_second = last_ingest;
        self.last_checkpoint_second = last_checkpoint;
        Ok(last_ingest.map_or(0, |s| s + 1))
    }

    /// Advances the ingest watermark.
    fn note_ingest(&mut self, second: u64) {
        self.last_ingest_second = Some(self.last_ingest_second.map_or(second, |l| l.max(second)));
    }

    /// Best-effort automatic checkpoint, called at the start of every
    /// ingest entry point: fires when the cadence is due for `second`,
    /// *before* that second's readings apply, so the snapshot covers
    /// exactly the seconds preceding it and replay resumes at
    /// `last_ingest_second + 1`. Failures never abort ingestion — they
    /// count `recovery.checkpoint_errors` and are surfaced via
    /// [`IndoorQuerySystem::last_checkpoint_error`].
    fn maybe_checkpoint(&mut self, second: u64) {
        if self.config.checkpoint_every == 0 || self.checkpoint_dir.is_none() || second == 0 {
            return;
        }
        // Only the first ingest call of a new second can be due.
        if self.last_ingest_second.is_some_and(|l| second <= l) {
            return;
        }
        let base = self.last_checkpoint_second.unwrap_or(0);
        if second.saturating_sub(base) < self.config.checkpoint_every {
            return;
        }
        self.last_checkpoint_second = Some(second);
        if let Err(e) = self.checkpoint_now() {
            self.recorder.add("recovery.checkpoint_errors", 1);
            self.last_checkpoint_error = Some(e.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_floorplan::{office_building, OfficeParams};

    fn system() -> IndoorQuerySystem {
        let plan = office_building(&OfficeParams::default()).unwrap();
        IndoorQuerySystem::new(plan, SystemConfig::default(), 7)
    }

    fn o(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn construction_matches_config() {
        let sys = system();
        assert_eq!(sys.readers().len(), 19);
        assert_eq!(sys.plan().rooms().len(), 30);
        assert!(sys.graph().is_connected());
        assert_eq!(sys.query_count(), 0);
    }

    #[test]
    fn register_and_deregister() {
        let mut sys = system();
        let r = sys.register_range(Rect::new(0.0, 9.0, 10.0, 2.0)).unwrap();
        let k = sys.register_knn(Point2::new(10.0, 10.0), 3).unwrap();
        assert_ne!(r, k);
        assert_eq!(sys.query_count(), 2);
        sys.deregister(r).unwrap();
        assert_eq!(sys.query_count(), 1);
        assert_eq!(
            sys.deregister(r).unwrap_err(),
            CoreError::UnknownQuery(r.raw())
        );
        // Validation errors propagate.
        assert!(sys.register_knn(Point2::new(0.0, 0.0), 0).is_err());
        assert!(sys.register_range(Rect::new(0.0, 0.0, 0.0, 0.0)).is_err());
    }

    #[test]
    fn end_to_end_range_query_finds_object() {
        let mut sys = system();
        let reader = sys.readers()[2];
        // The object pings reader 2 for a few seconds.
        for s in 0..5u64 {
            sys.ingest_detections(s, &[(o(0), reader.id())]);
        }
        // Window around that reader.
        let qid = sys
            .register_range(Rect::centered(reader.position(), 10.0, 6.0))
            .unwrap();
        let report = sys.evaluate(5);
        let rs = &report.range_results[&qid];
        assert!(
            rs.probability(o(0)) > 0.3,
            "object should very likely be in the window, got {}",
            rs.probability(o(0))
        );
        assert_eq!(report.candidates_processed, 1);
        assert_eq!(report.objects_known, 1);
    }

    #[test]
    fn end_to_end_knn_query_ranks_by_proximity() {
        let mut sys = system();
        let near = sys.readers()[0];
        let far = sys.readers()[18];
        for s in 0..3u64 {
            sys.ingest_detections(s, &[(o(0), near.id()), (o(1), far.id())]);
        }
        let qid = sys.register_knn(near.position(), 1).unwrap();
        let report = sys.evaluate(3);
        let rs = &report.knn_results[&qid];
        assert!(rs.probability(o(0)) > rs.probability(o(1)));
    }

    #[test]
    fn pruning_reduces_processed_candidates() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut sys = IndoorQuerySystem::new(plan, SystemConfig::default(), 7);
        // Two objects at opposite ends; a single tight window near one.
        let near = sys.readers()[0];
        let far = sys.readers()[18];
        sys.ingest_detections(0, &[(o(0), near.id()), (o(1), far.id())]);
        sys.register_range(Rect::centered(near.position(), 6.0, 4.0))
            .unwrap();
        let report = sys.evaluate(0);
        assert_eq!(report.candidates_processed, 1, "far object pruned");
        assert_eq!(report.objects_known, 2);

        // Same setup without pruning: both processed.
        let plan = office_building(&OfficeParams::default()).unwrap();
        let cfg = SystemConfig {
            prune_candidates: false,
            ..Default::default()
        };
        let mut sys2 = IndoorQuerySystem::new(plan, cfg, 7);
        sys2.ingest_detections(0, &[(o(0), near.id()), (o(1), far.id())]);
        sys2.register_range(Rect::centered(near.position(), 6.0, 4.0))
            .unwrap();
        let report2 = sys2.evaluate(0);
        assert_eq!(report2.candidates_processed, 2);
    }

    #[test]
    fn cache_hits_on_repeated_evaluation() {
        let mut sys = system();
        let reader = sys.readers()[4];
        for s in 0..3u64 {
            sys.ingest_detections(s, &[(o(0), reader.id())]);
        }
        sys.register_range(Rect::centered(reader.position(), 8.0, 6.0))
            .unwrap();
        let r1 = sys.evaluate(3);
        assert_eq!(r1.cache_stats.hits, 0);
        sys.ingest_detections(4, &[]);
        let r2 = sys.evaluate(4);
        assert!(r2.cache_stats.hits >= 1, "second evaluation reuses cache");
    }

    #[test]
    fn ptknn_through_facade() {
        let mut sys = system();
        let near = sys.readers()[0];
        let far = sys.readers()[18];
        for s in 0..3u64 {
            sys.ingest_detections(s, &[(o(0), near.id()), (o(1), far.id())]);
        }
        let qid = sys.register_ptknn(near.position(), 1, 0.5).unwrap();
        let report = sys.evaluate(3);
        let rs = &report.ptknn_results[&qid];
        assert!(rs.probability(o(0)) > 0.5, "o0 is the confident 1NN");
        assert_eq!(rs.probability(o(1)), 0.0);
    }

    #[test]
    fn closest_pairs_through_facade() {
        let mut sys = system();
        let r0 = sys.readers()[0];
        let r1 = sys.readers()[1];
        let r18 = sys.readers()[18];
        for s in 0..3u64 {
            sys.ingest_detections(s, &[(o(0), r0.id()), (o(1), r1.id()), (o(2), r18.id())]);
        }
        let qid = sys.register_closest_pairs(1, 20.0).unwrap();
        let report = sys.evaluate(3);
        let pairs = &report.closest_pairs_results[&qid];
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].a, pairs[0].b), (o(0), o(1)));
        // All three objects were preprocessed (closest-pairs is global).
        assert_eq!(report.candidates_processed, 3);
    }

    #[test]
    fn logical_timings_are_bit_identical_across_runs() {
        let run = || {
            let plan = office_building(&OfficeParams::default()).unwrap();
            let cfg = SystemConfig {
                timing: TimingMode::Logical,
                ..Default::default()
            };
            let mut sys = IndoorQuerySystem::new(plan, cfg, 7);
            let reader = sys.readers()[2];
            for s in 0..3u64 {
                sys.ingest_detections(s, &[(o(0), reader.id())]);
            }
            sys.register_range(Rect::centered(reader.position(), 8.0, 6.0))
                .unwrap();
            sys.register_ptknn(reader.position(), 1, 0.5).unwrap();
            let report = sys.evaluate(3);
            (report.timings, report.ptknn_results)
        };
        let (t1, p1) = run();
        let (t2, p2) = run();
        assert_eq!(t1, t2, "logical timings must be reproducible");
        assert!(t1.total >= t1.evaluation);
        let flat = |m: &BTreeMap<QueryId, ResultSet>| -> Vec<(QueryId, Vec<(ObjectId, f64)>)> {
            m.iter()
                .map(|(id, rs)| (*id, rs.iter().collect()))
                .collect()
        };
        assert_eq!(flat(&p1), flat(&p2), "PTkNN sampling must be reproducible");
    }

    #[test]
    fn observability_snapshot_covers_pipeline_stages() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let cfg = SystemConfig {
            observability: true,
            timing: TimingMode::Logical,
            ..Default::default()
        };
        let mut sys = IndoorQuerySystem::new(plan, cfg, 7);
        let near = sys.readers()[0];
        let far = sys.readers()[18];
        for s in 0..4u64 {
            sys.ingest_detections(s, &[(o(0), near.id()), (o(1), far.id())]);
        }
        sys.register_range(Rect::centered(near.position(), 8.0, 6.0))
            .unwrap();
        sys.register_knn(near.position(), 1).unwrap();
        let report = sys.evaluate(4);
        let snap = report.metrics.expect("observability on → snapshot");
        let stages = snap.stages();
        for stage in [
            "collector",
            "optimizer",
            "pf",
            "cache",
            "spcache",
            "evaluate",
        ] {
            assert!(
                stages.iter().any(|s| s == stage),
                "missing {stage}: {stages:?}"
            );
        }
        assert!(snap.counters["collector.entries_aggregated"] >= 8);
        assert!(snap.counters["pf.sir_iterations"] > 0);
        assert!(snap.histograms["pf.ess"].count > 0, "ESS observed");
        assert!(snap.spans.contains_key("evaluate/queries/range"));
        assert!(snap.spans.contains_key("evaluate/queries/knn"));
        assert_eq!(snap.spans["evaluate"].count, 1);
        // Off by default: no snapshot, and the recorder is inert.
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut off = IndoorQuerySystem::new(plan, SystemConfig::default(), 7);
        off.ingest_detections(0, &[(o(0), near.id())]);
        assert!(!off.recorder().is_enabled());
        assert!(off.evaluate(0).metrics.is_none());
    }

    /// Deterministic per-second detections: objects hop readers on fixed
    /// schedules, one object blinks in and out.
    fn detections(ids: &[ReaderId], s: u64) -> Vec<(ObjectId, ReaderId)> {
        let n = ids.len() as u64;
        let mut v = vec![
            (o(0), ids[((s / 3) % n) as usize]),
            (o(1), ids[((s / 4 + 5) % n) as usize]),
        ];
        if s.is_multiple_of(2) {
            v.push((o(2), ids[((s / 5 + 9) % n) as usize]));
        }
        v
    }

    fn register_recovery_queries(sys: &mut IndoorQuerySystem) {
        sys.register_range(Rect::centered(sys.readers()[2].position(), 10.0, 8.0))
            .unwrap();
        sys.register_knn(sys.readers()[0].position(), 2).unwrap();
        sys.register_ptknn(sys.readers()[4].position(), 1, 0.3)
            .unwrap();
    }

    /// Ingests seconds `from..=to`, evaluating at the fixed schedule;
    /// returns the last report.
    fn drive(sys: &mut IndoorQuerySystem, from: u64, to: u64) -> Option<EvaluationReport> {
        let ids: Vec<ReaderId> = sys.readers().iter().map(|r| r.id()).collect();
        let mut last = None;
        for s in from..=to {
            let d = detections(&ids, s);
            sys.ingest_detections(s, &d);
            if [5, 9, 12].contains(&s) {
                last = Some(sys.evaluate(s));
            }
        }
        last
    }

    /// Canonical rendering of a report for byte-compare: result
    /// probabilities as exact f64 bits plus the metrics snapshot with the
    /// run-shape-dependent `recovery.*` counters stripped.
    fn render(report: &EvaluationReport) -> String {
        let mut out = String::new();
        for (id, rs) in report
            .range_results
            .iter()
            .chain(&report.knn_results)
            .chain(&report.ptknn_results)
        {
            out.push_str(&format!("q{}:", id.raw()));
            for (obj, p) in rs.iter() {
                out.push_str(&format!(" {}={:016x}", obj.raw(), p.to_bits()));
            }
            out.push('\n');
        }
        let mut snap = report.metrics.clone().expect("observability on");
        snap.counters.retain(|k, _| !k.starts_with("recovery."));
        out + &snap.to_json()
    }

    fn ckpt_cfg() -> SystemConfig {
        SystemConfig {
            timing: TimingMode::Logical,
            observability: true,
            checkpoint_every: 4,
            ..Default::default()
        }
    }

    fn temp_ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ripq_core_ckpt_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn recover_reproduces_an_uninterrupted_run_bit_for_bit() {
        let dir = temp_ckpt_dir("resume");
        // Baseline: same config, no checkpoint IO, run straight through.
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut base = IndoorQuerySystem::new(plan, ckpt_cfg(), 7);
        register_recovery_queries(&mut base);
        let golden = render(&drive(&mut base, 0, 12).unwrap());

        // Life 1: checkpoint at the start of second 4 (covers 0..=3),
        // then die after ingesting second 6.
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut life1 = IndoorQuerySystem::new(plan, ckpt_cfg(), 7);
        life1.set_checkpoint_dir(&dir);
        register_recovery_queries(&mut life1);
        drive(&mut life1, 0, 6);
        assert!(life1.last_checkpoint_error().is_none());
        drop(life1);

        // Life 2: recover and replay the reading-store suffix.
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut life2 = IndoorQuerySystem::new(plan, ckpt_cfg(), 7);
        let outcome = life2.recover(&dir).unwrap();
        assert_eq!(outcome, RecoveryOutcome::Resumed { replay_from: 4 });
        register_recovery_queries(&mut life2);
        let recovered = render(&drive(&mut life2, 4, 12).unwrap());

        assert_eq!(golden, recovered, "recovered run must be bit-identical");
        let resumed = life2.recorder().snapshot().counters["recovery.resumed"];
        assert_eq!(resumed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_checkpoint_is_quarantined_and_rebuilt_cold() {
        let dir = temp_ckpt_dir("corrupt");
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut base = IndoorQuerySystem::new(plan, ckpt_cfg(), 7);
        register_recovery_queries(&mut base);
        let golden = render(&drive(&mut base, 0, 12).unwrap());

        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut life1 = IndoorQuerySystem::new(plan, ckpt_cfg(), 7);
        life1.set_checkpoint_dir(&dir);
        register_recovery_queries(&mut life1);
        drive(&mut life1, 0, 6);
        drop(life1);

        // Flip one payload bit in the snapshot.
        let path = checkpoint::snapshot_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut life2 = IndoorQuerySystem::new(plan, ckpt_cfg(), 7);
        match life2.recover(&dir).unwrap() {
            RecoveryOutcome::Quarantined { path: moved } => {
                assert!(moved.to_string_lossy().ends_with(".corrupt"));
                assert!(moved.exists());
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert!(!path.exists(), "damaged file moved aside");
        assert_eq!(
            life2.recorder().snapshot().counters["recovery.quarantined"],
            1
        );
        // Cold rebuild: replay the full reading store and match the
        // uninterrupted run exactly.
        register_recovery_queries(&mut life2);
        let rebuilt = render(&drive(&mut life2, 0, 12).unwrap());
        assert_eq!(golden, rebuilt, "cold rebuild must still be exact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_with_no_snapshot_is_a_cold_start() {
        let dir = temp_ckpt_dir("cold");
        std::fs::create_dir_all(&dir).unwrap();
        let mut sys = system();
        assert_eq!(sys.recover(&dir).unwrap(), RecoveryOutcome::ColdStart);
        assert_eq!(sys.checkpoint_dir(), Some(dir.as_path()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_now_without_dir_is_a_clean_error() {
        let mut sys = system();
        match sys.checkpoint_now() {
            Err(RipqError::Io(msg)) => assert!(msg.contains("no checkpoint directory")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn query_budget_degrades_answers_and_tags_queries() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let cfg = SystemConfig {
            timing: TimingMode::Logical,
            prune_candidates: false,
            query_budget: Some(150),
            ..Default::default()
        };
        let mut sys = IndoorQuerySystem::new(plan, cfg, 7);
        let ids: Vec<ReaderId> = sys.readers().iter().map(|r| r.id()).collect();
        for s in 0..=5u64 {
            let d = detections(&ids, s);
            sys.ingest_detections(s, &d);
        }
        // A window covering the whole floor: every object answers, so
        // every degradation level is visible through the query tag.
        let qid = sys
            .register_range(Rect::new(-100.0, -100.0, 400.0, 400.0))
            .unwrap();
        let report = sys.evaluate(8);
        assert!(
            report
                .object_degradation
                .values()
                .any(|l| *l > DegradationLevel::Full),
            "budget 150 must degrade at least one object: {:?}",
            report.object_degradation
        );
        assert_eq!(
            report.degradation[&qid],
            report.object_degradation.values().copied().max().unwrap(),
            "query tag is the worst level among answering objects"
        );
        // Degraded answers are still proper distributions.
        for obj in report.object_degradation.keys() {
            let total = report.index.total_probability(obj);
            assert!((total - 1.0).abs() < 1e-9, "object {obj:?}: {total}");
        }
    }

    #[test]
    fn injected_pf_fault_is_quarantined_through_the_facade() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let cfg = SystemConfig {
            timing: TimingMode::Logical,
            prune_candidates: false,
            observability: true,
            ..Default::default()
        };
        let mut sys = IndoorQuerySystem::new(plan, cfg, 7);
        let ids: Vec<ReaderId> = sys.readers().iter().map(|r| r.id()).collect();
        for s in 0..=4u64 {
            let d = detections(&ids, s);
            sys.ingest_detections(s, &d);
        }
        let qid = sys
            .register_range(Rect::new(-100.0, -100.0, 400.0, 400.0))
            .unwrap();
        sys.inject_preprocess_fault(o(0), usize::MAX);
        let report = sys.evaluate(6);
        assert_eq!(
            report.object_degradation[&o(0)],
            DegradationLevel::Quarantined
        );
        assert_eq!(report.degradation[&qid], DegradationLevel::Quarantined);
        // The quarantined object still gets a (fallback) answer.
        let total = report.index.total_probability(&o(0));
        assert!((total - 1.0).abs() < 1e-9, "fallback distribution: {total}");
        let snap = report.metrics.unwrap();
        assert!(snap.counters["degrade.quarantined"] >= 1);
        assert!(snap.counters["degrade.pf_panics"] >= 1);
    }

    #[test]
    fn evaluation_with_no_queries_is_cheap_and_empty() {
        let mut sys = system();
        sys.ingest_detections(0, &[(o(0), sys.readers()[0].id())]);
        let report = sys.evaluate(0);
        assert!(report.range_results.is_empty());
        assert!(report.knn_results.is_empty());
        assert_eq!(
            report.candidates_processed, 0,
            "no queries → nothing preprocessed"
        );
    }
}
