//! # ripq-core — the indoor spatial query evaluation engine
//!
//! Ties every substrate together into the system of Fig. 3 of the EDBT
//! 2013 paper:
//!
//! ```text
//! raw readings ─→ event-driven collector ─→ query-aware optimizer ─→ C
//!                                │                                   │
//!                                ▼                                   ▼
//!                          cache module ◄──── particle-filter preprocessing
//!                                                      │
//!                                                      ▼  APtoObjHT
//!                                              query evaluation module
//! ```
//!
//! * [`RangeQuery`] / [`KnnQuery`] — registered probabilistic queries;
//! * [`prune_range_candidates`] / [`prune_knn_candidates`] — the
//!   query-aware optimization module (§4.3): uncertain-region filtering for
//!   range queries and `sᵢ / lᵢ` network-distance pruning for kNN queries;
//! * [`evaluate_range`] — **Algorithm 3**, with the hallway width-ratio and
//!   room area-ratio dimensional compensation of Fig. 6;
//! * [`evaluate_knn`] — **Algorithm 4**, expanding anchors outward from the
//!   query point until the accumulated probability reaches `k`;
//! * [`IndoorQuerySystem`] — the end-to-end facade: feed raw readings in,
//!   register queries, call [`IndoorQuerySystem::evaluate`] for answers;
//! * [`continuous`] — continuous range/kNN queries (the paper's stated
//!   future work) maintained incrementally across timestamps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod clock;
mod closest_pairs;
pub mod continuous;
mod error;
mod knn_eval;
mod occupancy;
mod optimizer;
mod ptknn;
mod query;
mod range_eval;
mod result;
mod system;

pub use checkpoint::RecoveryOutcome;
pub use clock::{Clock, ClockInstant, TimingMode};
pub use closest_pairs::{
    evaluate_closest_pairs, evaluate_closest_pairs_with_oracle, ClosestPairsQuery, ObjectPair,
};
pub use error::{CoreError, RipqError};
pub use knn_eval::{evaluate_knn, evaluate_knn_with_oracle, evaluate_knn_with_paths};
pub use occupancy::{room_occupancy, OccupancyReport, RoomOccupancy};
pub use optimizer::{
    prune_knn_candidates, prune_knn_candidates_with_oracle, prune_knn_candidates_with_paths,
    prune_range_candidates, uncertain_region_radius,
};
pub use ptknn::{evaluate_ptknn, evaluate_ptknn_with_oracle, PtknnQuery};
pub use query::{KnnQuery, QueryId, RangeQuery};
pub use range_eval::evaluate_range;
pub use result::{ProbResult, ResultSet};
pub use ripq_graph::{DistanceBackend, DistanceOracle, OracleError, OracleStats};
pub use ripq_obs::{MetricsSnapshot, Recorder};
pub use ripq_pf::DegradationLevel;
pub use system::{EvaluationReport, EvaluationTimings, IndoorQuerySystem, SystemConfig};
