//! The query-aware optimization module (§4.3).
//!
//! Running the particle filter is the expensive step, so objects that
//! cannot possibly appear in any registered query's result ("non-candidate
//! objects") are filtered out *before* preprocessing:
//!
//! * **Range queries** — an object's *uncertain region* `UR(oᵢ)` is a
//!   circle centered at its most recent detecting reader `d`, with radius
//!   `u_max · (t_now − t_last) + d.range`. Objects whose uncertain region
//!   misses every query window are pruned (Fig. 5).
//! * **kNN queries** — distance-based pruning after Yang et al.: with
//!   `sᵢ / lᵢ` the min/max shortest network distance from the query point
//!   to `UR(oᵢ)` and `f` the k-th smallest `lᵢ`, every object with
//!   `sᵢ > f` is pruned (Fig. 4).

use crate::KnnQuery;
use ripq_geom::Rect;
use ripq_graph::{DistanceOracle, ShortestPaths, WalkingGraph};
use ripq_rfid::{DataCollector, ObjectId, Reader};

/// Radius of an object's uncertain region: how far it may have walked
/// since its last detection, plus the detection radius itself.
pub fn uncertain_region_radius(reader: &Reader, t_last: u64, now: u64, max_speed: f64) -> f64 {
    let elapsed = now.saturating_sub(t_last) as f64;
    max_speed * elapsed + reader.activation_range()
}

/// Range-query pruning: returns the objects whose uncertain region
/// intersects at least one of `windows`.
///
/// Uses plain Euclidean geometry ("we employ a simple approach based on the
/// Euclidian distance instead of the minimum indoor walking distance to
/// filter out non-candidate objects", §4.3) — conservative and cheap.
pub fn prune_range_candidates(
    collector: &DataCollector,
    readers: &[Reader],
    windows: &[Rect],
    now: u64,
    max_speed: f64,
) -> Vec<ObjectId> {
    let mut out = Vec::new();
    for o in collector.objects() {
        let Some((rid, t_last)) = collector.last_detection(o) else {
            continue;
        };
        let reader = &readers[rid.index()];
        let r = uncertain_region_radius(reader, t_last, now, max_speed);
        if windows
            .iter()
            .any(|w| w.intersects_circle(reader.position(), r))
        {
            out.push(o);
        }
    }
    out.sort_unstable();
    out
}

/// kNN-query pruning: returns the objects that may be among the `k`
/// nearest to the query point by indoor walking distance.
///
/// `sᵢ = max(0, dist_net(q, d) − r_UR)` and `lᵢ = dist_net(q, d) + r_UR`
/// bound the object's possible network distance to `q`; with `f` the k-th
/// smallest `lᵢ`, any object with `sᵢ > f` is provably outside every
/// possible kNN result.
pub fn prune_knn_candidates(
    graph: &WalkingGraph,
    collector: &DataCollector,
    readers: &[Reader],
    query: &KnnQuery,
    now: u64,
    max_speed: f64,
) -> Vec<ObjectId> {
    let qpos = graph.project(query.point);
    let sp = graph.shortest_paths_from(qpos);
    prune_knn_candidates_with_paths(graph, collector, readers, query, now, max_speed, &sp)
}

/// [`prune_knn_candidates`] with a precomputed Dijkstra tree for the
/// query point. Registered queries have fixed points, so the facade
/// memoizes the tree (see [`ripq_graph::ShortestPathCache`]) instead of
/// re-running Dijkstra on every evaluation pass.
pub fn prune_knn_candidates_with_paths(
    graph: &WalkingGraph,
    collector: &DataCollector,
    readers: &[Reader],
    query: &KnnQuery,
    now: u64,
    max_speed: f64,
    sp: &ShortestPaths,
) -> Vec<ObjectId> {
    prune_knn_with_distance(collector, readers, query, now, max_speed, |reader| {
        sp.distance_to(graph, reader.graph_pos())
    })
}

/// [`prune_knn_candidates`] through the landmark distance oracle: each
/// reader's network distance to the query point comes from a memoized,
/// goal-directed [`DistanceOracle::distance`] query instead of a full
/// Dijkstra tree. ALT point-to-point answers are bit-identical to
/// Dijkstra's, so the `sᵢ / lᵢ / f` arithmetic — and the pruned set —
/// match the [`prune_knn_candidates_with_paths`] path exactly.
pub fn prune_knn_candidates_with_oracle(
    graph: &WalkingGraph,
    collector: &DataCollector,
    readers: &[Reader],
    query: &KnnQuery,
    now: u64,
    max_speed: f64,
    oracle: &DistanceOracle,
) -> Vec<ObjectId> {
    let qpos = graph.project(query.point);
    prune_knn_with_distance(collector, readers, query, now, max_speed, |reader| {
        oracle.distance(graph, qpos, reader.graph_pos())
    })
}

/// Shared body of the kNN pruning rule, generic over how the network
/// distance from the query point to a reader is produced.
fn prune_knn_with_distance(
    collector: &DataCollector,
    readers: &[Reader],
    query: &KnnQuery,
    now: u64,
    max_speed: f64,
    distance_to_reader: impl Fn(&Reader) -> f64,
) -> Vec<ObjectId> {
    let mut bounds: Vec<(ObjectId, f64, f64)> = Vec::new();
    for o in collector.objects() {
        let Some((rid, t_last)) = collector.last_detection(o) else {
            continue;
        };
        let reader = &readers[rid.index()];
        let r = uncertain_region_radius(reader, t_last, now, max_speed);
        let d = distance_to_reader(reader);
        let s_i = (d - r).max(0.0);
        let l_i = d + r;
        bounds.push((o, s_i, l_i));
    }
    if bounds.len() <= query.k {
        let mut all: Vec<ObjectId> = bounds.into_iter().map(|(o, _, _)| o).collect();
        all.sort_unstable();
        return all;
    }
    // f = k-th minimum of the l_i values.
    let mut ls: Vec<f64> = bounds.iter().map(|&(_, _, l)| l).collect();
    ls.sort_by(f64::total_cmp);
    let f = ls[query.k - 1];

    let mut out: Vec<ObjectId> = bounds
        .into_iter()
        .filter(|&(_, s, _)| s <= f)
        .map(|(o, _, _)| o)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryId;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;
    use ripq_rfid::{deploy_uniform, ReaderId};

    fn setup() -> (WalkingGraph, Vec<Reader>, DataCollector) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        (graph, readers, DataCollector::new())
    }

    fn o(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn ur_radius_grows_with_silence() {
        let (_, readers, _) = setup();
        let r = &readers[0];
        assert_eq!(uncertain_region_radius(r, 10, 10, 1.5), 2.0);
        assert_eq!(uncertain_region_radius(r, 10, 14, 1.5), 8.0);
        // now < t_last (clock skew) does not underflow.
        assert_eq!(uncertain_region_radius(r, 14, 10, 1.5), 2.0);
    }

    #[test]
    fn range_pruning_keeps_nearby_objects_only() {
        let (_, readers, mut c) = setup();
        // Object 0 just seen at reader 0; object 1 just seen at the last
        // reader (far away in the building).
        c.ingest_second(100, &[(o(0), ReaderId::new(0)), (o(1), ReaderId::new(18))]);
        let window = Rect::centered(readers[0].position(), 6.0, 6.0);
        let got = prune_range_candidates(&c, &readers, &[window], 100, 1.5);
        assert_eq!(got, vec![o(0)]);
    }

    #[test]
    fn range_pruning_widens_over_time() {
        let (_, readers, mut c) = setup();
        c.ingest_second(0, &[(o(0), ReaderId::new(0))]);
        for s in 1..=30 {
            c.ingest_second(s, &[]);
        }
        // A window ~20 m from reader 0 along the same hallway.
        let center = readers[0].position() + ripq_geom::Point2::new(20.0, 0.0);
        let window = Rect::centered(center, 4.0, 4.0);
        // Immediately after the detection: cannot be there.
        assert!(prune_range_candidates(&c, &readers, &[window], 0, 1.5).is_empty());
        // After 30 s at 1.5 m/s it could have walked 45 m: candidate.
        assert_eq!(
            prune_range_candidates(&c, &readers, &[window], 30, 1.5),
            vec![o(0)]
        );
    }

    #[test]
    fn no_windows_no_candidates() {
        let (_, readers, mut c) = setup();
        c.ingest_second(0, &[(o(0), ReaderId::new(0))]);
        assert!(prune_range_candidates(&c, &readers, &[], 0, 1.5).is_empty());
    }

    #[test]
    fn knn_pruning_drops_provably_far_objects() {
        let (graph, readers, mut c) = setup();
        // Three objects: two at reader 0's end of the building, one at the
        // far end.
        c.ingest_second(
            50,
            &[
                (o(0), ReaderId::new(0)),
                (o(1), ReaderId::new(1)),
                (o(2), ReaderId::new(18)),
            ],
        );
        let q = KnnQuery::new(QueryId::new(0), readers[0].position(), 2).unwrap();
        let got = prune_knn_candidates(&graph, &c, &readers, &q, 50, 1.5);
        assert!(got.contains(&o(0)));
        assert!(got.contains(&o(1)));
        assert!(!got.contains(&o(2)), "far object must be pruned");
    }

    #[test]
    fn knn_pruning_keeps_all_when_few_objects() {
        let (graph, readers, mut c) = setup();
        c.ingest_second(0, &[(o(0), ReaderId::new(0)), (o(1), ReaderId::new(18))]);
        let q = KnnQuery::new(QueryId::new(0), readers[0].position(), 5).unwrap();
        let got = prune_knn_candidates(&graph, &c, &readers, &q, 0, 1.5);
        assert_eq!(got.len(), 2, "fewer objects than k: keep everything");
    }

    #[test]
    fn knn_pruning_via_oracle_matches_dijkstra_exactly() {
        let (graph, readers, mut c) = setup();
        c.ingest_second(
            10,
            &[
                (o(0), ReaderId::new(0)),
                (o(1), ReaderId::new(5)),
                (o(2), ReaderId::new(11)),
                (o(3), ReaderId::new(18)),
            ],
        );
        for s in 11..=25 {
            c.ingest_second(s, &[]);
        }
        let oracle = ripq_graph::DistanceOracle::build(&graph, ripq_graph::DEFAULT_LANDMARKS);
        for (ri, k, now) in [(0usize, 1usize, 10u64), (9, 2, 18), (18, 1, 25)] {
            let q = KnnQuery::new(QueryId::new(0), readers[ri].position(), k).unwrap();
            let base = prune_knn_candidates(&graph, &c, &readers, &q, now, 1.5);
            let alt = prune_knn_candidates_with_oracle(&graph, &c, &readers, &q, now, 1.5, &oracle);
            assert_eq!(base, alt, "reader {ri}, k={k}, now={now}");
        }
        assert!(oracle.stats().p2p_queries >= 12, "one p2p query per reader");
    }

    #[test]
    fn knn_pruning_is_conservative_over_time() {
        let (graph, readers, mut c) = setup();
        c.ingest_second(
            0,
            &[
                (o(0), ReaderId::new(0)),
                (o(1), ReaderId::new(9)),
                (o(2), ReaderId::new(18)),
            ],
        );
        // After a long silence every uncertain region is huge: nothing can
        // be pruned any more.
        for s in 1..=200 {
            c.ingest_second(s, &[]);
        }
        let q = KnnQuery::new(QueryId::new(0), readers[0].position(), 1).unwrap();
        let got = prune_knn_candidates(&graph, &c, &readers, &q, 200, 1.5);
        assert_eq!(got.len(), 3);
    }
}
