//! Probabilistic closest-pairs queries — part of the paper's stated future
//! work ("more spatial query types such as continuous range, continuous
//! kNN, closest-pairs", §6).
//!
//! A closest-pairs query asks for the `m` pairs of tracked objects with
//! the smallest indoor walking distance between them. Under probabilistic
//! locations we rank pairs by **expected network distance** between their
//! anchor distributions and additionally report, for each returned pair,
//! the probability that the pair is within a caller-supplied contact
//! radius — the "are these two people together?" primitive that contact
//! tracing and social applications need.

use ripq_graph::{AnchorId, AnchorObjectIndex, AnchorSet, DistanceOracle, GraphPos, WalkingGraph};
use ripq_rfid::ObjectId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// One result pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectPair {
    /// The pair, ordered by object id (`a < b`).
    pub a: ObjectId,
    /// Second object of the pair.
    pub b: ObjectId,
    /// Expected network distance between the two objects' distributions.
    pub expected_distance: f64,
    /// Probability the two objects are within the query's contact radius.
    pub within_radius: f64,
}

/// A closest-pairs query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosestPairsQuery {
    /// Number of pairs to return.
    pub m: usize,
    /// Contact radius (meters of walking distance) for the
    /// `within_radius` probability.
    pub contact_radius: f64,
}

/// Evaluates a closest-pairs query over the filtered index.
///
/// Complexity: one Dijkstra per distinct *anchor* that carries probability
/// (not per object), then O(pairs × support²) accumulation. With the
/// default 64-particle distributions supports are small (≤ a few dozen
/// anchors per object).
pub fn evaluate_closest_pairs(
    graph: &WalkingGraph,
    anchors: &AnchorSet,
    index: &AnchorObjectIndex<ObjectId>,
    query: &ClosestPairsQuery,
) -> Vec<ObjectPair> {
    let Some((objects, support, pos_of)) = resolve_support(index, anchors, query) else {
        return Vec::new();
    };
    // Network distances between support anchors: Dijkstra from each.
    let mut dist: HashMap<(AnchorId, AnchorId), f64> = HashMap::new();
    for &a in &support {
        let sp = graph.shortest_paths_from(pos_of[&a]);
        for &b in &support {
            dist.insert((a, b), sp.distance_to(graph, pos_of[&b]));
        }
    }
    rank_pairs(&objects, index, &dist, query)
}

/// [`evaluate_closest_pairs`] through the landmark distance oracle: the
/// support-anchor distance matrix comes from one truncated ascending scan
/// per source anchor ([`DistanceOracle::distances_to_anchors`]) instead of
/// a full Dijkstra tree per source. Distances are bit-identical, so the
/// ranked pairs are too.
pub fn evaluate_closest_pairs_with_oracle(
    graph: &WalkingGraph,
    anchors: &AnchorSet,
    index: &AnchorObjectIndex<ObjectId>,
    query: &ClosestPairsQuery,
    oracle: &DistanceOracle,
) -> Vec<ObjectPair> {
    let Some((objects, support, pos_of)) = resolve_support(index, anchors, query) else {
        return Vec::new();
    };
    let needed: BTreeSet<AnchorId> = support.iter().copied().collect();
    let mut dist: HashMap<(AnchorId, AnchorId), f64> = HashMap::new();
    for &a in &support {
        let row = oracle.distances_to_anchors(graph, anchors, pos_of[&a], &needed);
        for &b in &support {
            dist.insert((a, b), row[&b]);
        }
    }
    rank_pairs(&objects, index, &dist, query)
}

/// The sorted object list, the distinct anchors that carry probability,
/// and their graph positions. `None` when the query is degenerate.
#[allow(clippy::type_complexity)]
fn resolve_support(
    index: &AnchorObjectIndex<ObjectId>,
    anchors: &AnchorSet,
    query: &ClosestPairsQuery,
) -> Option<(Vec<ObjectId>, Vec<AnchorId>, HashMap<AnchorId, GraphPos>)> {
    let mut objects: Vec<ObjectId> = index.objects().copied().collect();
    objects.sort_unstable();
    if objects.len() < 2 || query.m == 0 {
        return None;
    }
    // Distinct anchors used by any distribution (objects without one
    // simply contribute no anchors).
    let mut support: Vec<AnchorId> = objects
        .iter()
        .flat_map(|o| index.distribution(o).into_iter().flatten().map(|&(a, _)| a))
        .collect();
    support.sort_unstable();
    support.dedup();
    let pos_of: HashMap<AnchorId, GraphPos> = support
        .iter()
        .map(|&a| (a, anchors.anchor(a).pos))
        .collect();
    Some((objects, support, pos_of))
}

/// Accumulates expected distance / contact probability per pair over the
/// precomputed support-anchor distance matrix, ranks, and truncates.
fn rank_pairs(
    objects: &[ObjectId],
    index: &AnchorObjectIndex<ObjectId>,
    dist: &HashMap<(AnchorId, AnchorId), f64>,
    query: &ClosestPairsQuery,
) -> Vec<ObjectPair> {
    let mut pairs = Vec::with_capacity(objects.len() * (objects.len() - 1) / 2);
    for (i, &a) in objects.iter().enumerate() {
        let Some(da) = index.distribution(&a) else {
            continue;
        };
        for &b in &objects[i + 1..] {
            let Some(db) = index.distribution(&b) else {
                continue;
            };
            let mut expected = 0.0;
            let mut close = 0.0;
            let mut mass = 0.0;
            for &(aa, pa) in da {
                for &(ab, pb) in db {
                    let d = dist.get(&(aa, ab)).copied().unwrap_or(f64::INFINITY);
                    let w = pa * pb;
                    expected += w * d;
                    mass += w;
                    if d <= query.contact_radius {
                        close += w;
                    }
                }
            }
            if mass > 0.0 {
                expected /= mass;
                close /= mass;
            }
            pairs.push(ObjectPair {
                a,
                b,
                expected_distance: expected,
                within_radius: close,
            });
        }
    }
    pairs.sort_by(|x, y| {
        x.expected_distance
            .partial_cmp(&y.expected_distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
    });
    pairs.truncate(query.m);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_floorplan::{office_building, FloorPlan, OfficeParams};
    use ripq_geom::Point2;
    use ripq_graph::build_walking_graph;

    fn setup() -> (FloorPlan, WalkingGraph, AnchorSet) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        (plan, graph, anchors)
    }

    fn o(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn place(
        graph: &WalkingGraph,
        anchors: &AnchorSet,
        index: &mut AnchorObjectIndex<ObjectId>,
        obj: ObjectId,
        p: Point2,
    ) {
        let a = anchors.nearest(graph.project(p));
        index.set_object(obj, vec![(a, 1.0)]);
    }

    #[test]
    fn nearest_pair_comes_first() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let base = plan.hallways()[0].footprint().center();
        place(&graph, &anchors, &mut index, o(0), base);
        place(
            &graph,
            &anchors,
            &mut index,
            o(1),
            base + Point2::new(2.0, 0.0),
        );
        place(
            &graph,
            &anchors,
            &mut index,
            o(2),
            base + Point2::new(15.0, 0.0),
        );
        let q = ClosestPairsQuery {
            m: 3,
            contact_radius: 3.0,
        };
        let pairs = evaluate_closest_pairs(&graph, &anchors, &index, &q);
        assert_eq!(pairs.len(), 3);
        assert_eq!((pairs[0].a, pairs[0].b), (o(0), o(1)));
        assert!(pairs[0].expected_distance < pairs[1].expected_distance);
        assert!(pairs[0].within_radius > 0.99, "certain contact");
        // The far pairs are not within the contact radius.
        assert!(pairs[2].within_radius < 0.01);
    }

    #[test]
    fn m_truncates() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        for i in 0..4 {
            place(
                &graph,
                &anchors,
                &mut index,
                o(i),
                plan.rooms()[i as usize].center(),
            );
        }
        let q = ClosestPairsQuery {
            m: 2,
            contact_radius: 5.0,
        };
        let pairs = evaluate_closest_pairs(&graph, &anchors, &index, &q);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn uncertain_locations_give_expected_distance() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let base = plan.hallways()[0].footprint().center();
        let a_near = anchors.nearest(graph.project(base + Point2::new(2.0, 0.0)));
        let a_far = anchors.nearest(graph.project(base + Point2::new(10.0, 0.0)));
        place(&graph, &anchors, &mut index, o(0), base);
        index.set_object(o(1), vec![(a_near, 0.5), (a_far, 0.5)]);
        let q = ClosestPairsQuery {
            m: 1,
            contact_radius: 4.0,
        };
        let pairs = evaluate_closest_pairs(&graph, &anchors, &index, &q);
        // Expected distance ≈ 0.5·2 + 0.5·10 = 6 (± anchor discretization).
        assert!(
            (pairs[0].expected_distance - 6.0).abs() < 1.5,
            "got {}",
            pairs[0].expected_distance
        );
        // Contact (within 4 m) happens in the near branch only: ≈ 0.5.
        assert!((pairs[0].within_radius - 0.5).abs() < 0.05);
    }

    #[test]
    fn oracle_backend_ranks_pairs_bit_for_bit() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let base = plan.hallways()[0].footprint().center();
        let a_near = anchors.nearest(graph.project(base + Point2::new(2.0, 0.0)));
        let a_far = anchors.nearest(graph.project(plan.hallways()[2].footprint().center()));
        index.set_object(o(0), vec![(a_near, 0.4), (a_far, 0.6)]);
        for i in 1..5 {
            place(
                &graph,
                &anchors,
                &mut index,
                o(i),
                plan.rooms()[i as usize * 5].center(),
            );
        }
        let oracle = ripq_graph::DistanceOracle::build(&graph, ripq_graph::DEFAULT_LANDMARKS);
        let q = ClosestPairsQuery {
            m: 10,
            contact_radius: 8.0,
        };
        let eager = evaluate_closest_pairs(&graph, &anchors, &index, &q);
        let lazy = evaluate_closest_pairs_with_oracle(&graph, &anchors, &index, &q, &oracle);
        assert_eq!(eager.len(), lazy.len());
        for (x, y) in eager.iter().zip(&lazy) {
            assert_eq!((x.a, x.b), (y.a, y.b));
            assert_eq!(
                x.expected_distance.to_bits(),
                y.expected_distance.to_bits(),
                "pair ({}, {})",
                x.a,
                x.b
            );
            assert_eq!(x.within_radius.to_bits(), y.within_radius.to_bits());
        }
    }

    #[test]
    fn degenerate_inputs() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let q = ClosestPairsQuery {
            m: 5,
            contact_radius: 2.0,
        };
        assert!(evaluate_closest_pairs(&graph, &anchors, &index, &q).is_empty());
        place(&graph, &anchors, &mut index, o(0), plan.rooms()[0].center());
        assert!(
            evaluate_closest_pairs(&graph, &anchors, &index, &q).is_empty(),
            "one object has no pairs"
        );
        place(&graph, &anchors, &mut index, o(1), plan.rooms()[1].center());
        let zero = ClosestPairsQuery {
            m: 0,
            contact_radius: 2.0,
        };
        assert!(evaluate_closest_pairs(&graph, &anchors, &index, &zero).is_empty());
    }
}
