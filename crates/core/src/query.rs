//! Query types.

use crate::CoreError;
use ripq_geom::{Point2, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a registered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(u32);

impl QueryId {
    /// Wraps a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        QueryId(raw)
    }

    /// The raw index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A probabilistic indoor range query: "which objects are inside `window`,
/// with what probability?"
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeQuery {
    /// This query's identifier.
    pub id: QueryId,
    /// The rectangular query window.
    pub window: Rect,
}

impl RangeQuery {
    /// Creates a range query, validating the window.
    pub fn new(id: QueryId, window: Rect) -> Result<Self, CoreError> {
        if window.area() <= 0.0 {
            return Err(CoreError::EmptyWindow);
        }
        Ok(RangeQuery { id, window })
    }
}

/// A probabilistic indoor k-nearest-neighbor query: "which objects are
/// among the `k` nearest to `point` by indoor walking distance?"
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnnQuery {
    /// This query's identifier.
    pub id: QueryId,
    /// The query point (snapped to the nearest walking-graph edge during
    /// evaluation, §4.6).
    pub point: Point2,
    /// Number of neighbors requested.
    pub k: usize,
}

impl KnnQuery {
    /// Creates a kNN query, validating `k`.
    pub fn new(id: QueryId, point: Point2, k: usize) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::ZeroK);
        }
        Ok(KnnQuery { id, point, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_query_rejects_empty_window() {
        let err = RangeQuery::new(QueryId::new(0), Rect::new(0.0, 0.0, 0.0, 5.0));
        assert_eq!(err.unwrap_err(), CoreError::EmptyWindow);
        assert!(RangeQuery::new(QueryId::new(0), Rect::new(0.0, 0.0, 2.0, 5.0)).is_ok());
    }

    #[test]
    fn knn_query_rejects_zero_k() {
        let err = KnnQuery::new(QueryId::new(1), Point2::new(1.0, 1.0), 0);
        assert_eq!(err.unwrap_err(), CoreError::ZeroK);
        let q = KnnQuery::new(QueryId::new(1), Point2::new(1.0, 1.0), 3).unwrap();
        assert_eq!(q.k, 3);
    }

    #[test]
    fn query_id_display() {
        assert_eq!(QueryId::new(12).to_string(), "q12");
    }
}
