//! Probabilistic Threshold kNN (PTkNN) queries.
//!
//! Yang et al. [30] — the system the paper benchmarks against — define the
//! *Indoor Probabilistic Threshold kNN Query*: "finding a result set with
//! k objects which have a higher probability than the threshold probability
//! T" of belonging to the true kNN set (§2.1 of the paper). RIPQ supports
//! the same query type on top of its anchor-indexed distributions, so
//! users migrating from a symbolic-model deployment keep their query
//! semantics.
//!
//! The per-object kNN-membership probability is estimated by Monte-Carlo
//! sampling over the joint location distributions: each round samples one
//! concrete anchor per object (independently, per the index), computes the
//! exact kNN set of the sample by network distance, and counts membership
//! frequencies. This matches the semantics of possible-worlds kNN under
//! attribute-level uncertainty.

use crate::{CoreError, ResultSet};
use rand::Rng;
use ripq_geom::Point2;
use ripq_graph::{AnchorId, AnchorObjectIndex, AnchorSet, DistanceOracle, WalkingGraph};
use ripq_rfid::ObjectId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A probabilistic threshold kNN query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PtknnQuery {
    /// The query point.
    pub point: Point2,
    /// Number of neighbors.
    pub k: usize,
    /// Membership probability threshold `T ∈ (0, 1]`.
    pub threshold: f64,
}

impl PtknnQuery {
    /// Creates a PTkNN query, validating `k` and `T`.
    pub fn new(point: Point2, k: usize, threshold: f64) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::ZeroK);
        }
        // ripq-lint: allow(prob-hygiene) -- validation rejects exactly T = 0 per the query definition (T ∈ (0, 1]); a tolerance would wrongly reject tiny valid thresholds
        if !(0.0..=1.0).contains(&threshold) || threshold == 0.0 {
            return Err(CoreError::InvalidThreshold(threshold));
        }
        Ok(PtknnQuery {
            point,
            k,
            threshold,
        })
    }
}

/// Evaluates a PTkNN query by possible-worlds sampling.
///
/// `rounds` controls the Monte-Carlo effort (the estimate's standard error
/// is ≈ √(p(1−p)/rounds); 200 rounds resolve probabilities to ~±0.035).
/// Returns the objects whose estimated kNN-membership probability is
/// `≥ query.threshold`, with those probabilities.
pub fn evaluate_ptknn<R: Rng>(
    rng: &mut R,
    graph: &WalkingGraph,
    anchors: &AnchorSet,
    index: &AnchorObjectIndex<ObjectId>,
    query: &PtknnQuery,
    rounds: usize,
) -> ResultSet {
    let qpos = graph.project(query.point);
    let sp = graph.shortest_paths_from(qpos);
    evaluate_ptknn_with(rng, index, query, rounds, |a| {
        sp.distance_to(graph, anchors.anchor(a).pos)
    })
}

/// [`evaluate_ptknn`] through the landmark distance oracle: the anchor
/// distances come from one truncated ascending scan
/// ([`DistanceOracle::distances_to_anchors`]) over exactly the anchors
/// that carry probability, instead of a full Dijkstra tree. The distance
/// values — and therefore every Monte-Carlo draw and the result set —
/// are bit-identical to the Dijkstra path.
pub fn evaluate_ptknn_with_oracle<R: Rng>(
    rng: &mut R,
    graph: &WalkingGraph,
    anchors: &AnchorSet,
    index: &AnchorObjectIndex<ObjectId>,
    query: &PtknnQuery,
    rounds: usize,
    oracle: &DistanceOracle,
) -> ResultSet {
    let qpos = graph.project(query.point);
    // Union of anchors any distribution touches — the only distances the
    // sampler can ask for.
    let needed: BTreeSet<AnchorId> = index
        .objects()
        .filter_map(|o| index.distribution(o))
        .flatten()
        .map(|&(a, _)| a)
        .collect();
    let dist = oracle.distances_to_anchors(graph, anchors, qpos, &needed);
    evaluate_ptknn_with(rng, index, query, rounds, |a| dist[&a])
}

/// Shared Monte-Carlo body, generic over how an anchor's network distance
/// from the query point is produced.
fn evaluate_ptknn_with<R: Rng>(
    rng: &mut R,
    index: &AnchorObjectIndex<ObjectId>,
    query: &PtknnQuery,
    rounds: usize,
    distance_to_anchor: impl Fn(AnchorId) -> f64,
) -> ResultSet {
    // Pre-resolve every object's distribution and anchor distances.
    let objects: Vec<ObjectId> = {
        let mut v: Vec<ObjectId> = index.objects().copied().collect();
        v.sort_unstable();
        v
    };
    if objects.is_empty() || rounds == 0 {
        return ResultSet::new();
    }
    // An object listed by the index but missing its distribution (or with
    // an empty one) contributes nothing; skipping it keeps this query path
    // panic-free instead of trusting cross-view index invariants.
    type ObjDist<'a> = (&'a [(AnchorId, f64)], Vec<f64>);
    let mut kept: Vec<ObjectId> = Vec::with_capacity(objects.len());
    let mut dists: Vec<ObjDist<'_>> = Vec::with_capacity(objects.len());
    for o in &objects {
        let Some(dist) = index.distribution(o) else {
            continue;
        };
        if dist.is_empty() {
            continue;
        }
        let d: Vec<f64> = dist.iter().map(|&(a, _)| distance_to_anchor(a)).collect();
        kept.push(*o);
        dists.push((dist, d));
    }
    let objects = kept;
    if objects.is_empty() {
        return ResultSet::new();
    }

    let mut membership = vec![0u32; objects.len()];
    let mut sampled = Vec::with_capacity(objects.len());
    for _ in 0..rounds {
        sampled.clear();
        for (i, (dist, d)) in dists.iter().enumerate() {
            // Sample one anchor index by probability (distributions sum
            // to ~1; residual mass falls to the last entry).
            let mut x: f64 = rng.random::<f64>();
            let mut chosen = d.len() - 1;
            for (j, &(_, p)) in dist.iter().enumerate() {
                if x <= p {
                    chosen = j;
                    break;
                }
                x -= p;
            }
            sampled.push((d[chosen], i));
        }
        sampled.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for &(_, i) in sampled.iter().take(query.k) {
            membership[i] += 1;
        }
    }

    let mut out = ResultSet::new();
    for (i, &m) in membership.iter().enumerate() {
        let p = m as f64 / rounds as f64;
        if p >= query.threshold {
            out.add(objects[i], p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ripq_floorplan::{office_building, FloorPlan, OfficeParams};
    use ripq_graph::build_walking_graph;

    fn setup() -> (FloorPlan, WalkingGraph, AnchorSet) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        (plan, graph, anchors)
    }

    fn o(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn place(
        graph: &WalkingGraph,
        anchors: &AnchorSet,
        index: &mut AnchorObjectIndex<ObjectId>,
        obj: ObjectId,
        p: Point2,
    ) {
        let a = anchors.nearest(graph.project(p));
        index.set_object(obj, vec![(a, 1.0)]);
    }

    #[test]
    fn validation() {
        assert!(PtknnQuery::new(Point2::ORIGIN, 0, 0.5).is_err());
        assert!(PtknnQuery::new(Point2::ORIGIN, 1, 0.0).is_err());
        assert!(PtknnQuery::new(Point2::ORIGIN, 1, 1.5).is_err());
        assert!(PtknnQuery::new(Point2::ORIGIN, 1, 1.0).is_ok());
    }

    #[test]
    fn certain_objects_yield_deterministic_membership() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let q_point = plan.hallways()[0].footprint().center();
        // Three certain objects at increasing distance.
        for i in 0..3 {
            place(
                &graph,
                &anchors,
                &mut index,
                o(i),
                q_point + Point2::new(3.0 + 4.0 * i as f64, 0.0),
            );
        }
        let q = PtknnQuery::new(q_point, 2, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let rs = evaluate_ptknn(&mut rng, &graph, &anchors, &index, &q, 100);
        assert!((rs.probability(o(0)) - 1.0).abs() < 1e-9);
        assert!((rs.probability(o(1)) - 1.0).abs() < 1e-9);
        assert_eq!(rs.probability(o(2)), 0.0, "third object never in 2NN");
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn uncertain_object_gets_fractional_membership() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let q_point = plan.hallways()[0].footprint().center();
        let near = anchors.nearest(graph.project(q_point + Point2::new(2.0, 0.0)));
        let far = anchors.nearest(graph.project(plan.hallways()[2].footprint().center()));
        // Object 0: 50/50 near/far. Object 1: certain, in between.
        index.set_object(o(0), vec![(near, 0.5), (far, 0.5)]);
        place(
            &graph,
            &anchors,
            &mut index,
            o(1),
            q_point + Point2::new(6.0, 0.0),
        );
        let q = PtknnQuery::new(q_point, 1, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let rs = evaluate_ptknn(&mut rng, &graph, &anchors, &index, &q, 2000);
        // o0 is 1NN exactly when it sampled `near` (~50%).
        let p0 = rs.probability(o(0));
        assert!((p0 - 0.5).abs() < 0.06, "p0 = {p0}");
        let p1 = rs.probability(o(1));
        assert!((p1 - 0.5).abs() < 0.06, "p1 = {p1}");
    }

    #[test]
    fn threshold_filters_low_probability_members() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let q_point = plan.hallways()[0].footprint().center();
        let near = anchors.nearest(graph.project(q_point + Point2::new(2.0, 0.0)));
        let far = anchors.nearest(graph.project(plan.hallways()[2].footprint().center()));
        index.set_object(o(0), vec![(near, 0.1), (far, 0.9)]);
        place(
            &graph,
            &anchors,
            &mut index,
            o(1),
            q_point + Point2::new(5.0, 0.0),
        );
        let mut rng = StdRng::seed_from_u64(3);
        // T = 0.5: o0 (≈10% member) is filtered out, o1 (≈90%) stays.
        let q = PtknnQuery::new(q_point, 1, 0.5).unwrap();
        let rs = evaluate_ptknn(&mut rng, &graph, &anchors, &index, &q, 1000);
        assert_eq!(rs.probability(o(0)), 0.0);
        assert!(rs.probability(o(1)) > 0.8);
        // T = 0.05 keeps both.
        let q = PtknnQuery::new(q_point, 1, 0.05).unwrap();
        let rs = evaluate_ptknn(&mut rng, &graph, &anchors, &index, &q, 1000);
        assert!(rs.probability(o(0)) > 0.05);
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn oracle_backend_reproduces_dijkstra_sampling_bit_for_bit() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let q_point = plan.hallways()[0].footprint().center();
        let near = anchors.nearest(graph.project(q_point + Point2::new(2.0, 0.0)));
        let far = anchors.nearest(graph.project(plan.hallways()[2].footprint().center()));
        index.set_object(o(0), vec![(near, 0.5), (far, 0.5)]);
        for i in 1..4 {
            place(
                &graph,
                &anchors,
                &mut index,
                o(i),
                q_point + Point2::new(3.0 * i as f64, 0.0),
            );
        }
        let oracle = ripq_graph::DistanceOracle::build(&graph, ripq_graph::DEFAULT_LANDMARKS);
        let q = PtknnQuery::new(q_point, 2, 0.05).unwrap();
        // Identical RNG streams: same draw sequence ⇒ same estimates, to
        // the bit, iff every anchor distance matches to the bit.
        let mut rng_a = StdRng::seed_from_u64(9);
        let a = evaluate_ptknn(&mut rng_a, &graph, &anchors, &index, &q, 400);
        let mut rng_b = StdRng::seed_from_u64(9);
        let b = evaluate_ptknn_with_oracle(&mut rng_b, &graph, &anchors, &index, &q, 400, &oracle);
        let bits = |rs: &ResultSet| -> Vec<(ObjectId, u64)> {
            rs.iter().map(|(o, p)| (o, p.to_bits())).collect()
        };
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn empty_index_or_zero_rounds() {
        let (plan, graph, anchors) = setup();
        let index = AnchorObjectIndex::new();
        let q = PtknnQuery::new(plan.bounds().center(), 3, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(evaluate_ptknn(&mut rng, &graph, &anchors, &index, &q, 100).is_empty());
        let mut index2 = AnchorObjectIndex::new();
        place(
            &graph,
            &anchors,
            &mut index2,
            o(0),
            plan.rooms()[0].center(),
        );
        assert!(evaluate_ptknn(&mut rng, &graph, &anchors, &index2, &q, 0).is_empty());
    }

    #[test]
    fn membership_probabilities_sum_to_k() {
        // Over all objects, Σ membership probability = k when there are
        // at least k objects (every sampled world has exactly k members).
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let q_point = plan.bounds().center();
        for i in 0..6 {
            let room = &plan.rooms()[i as usize * 4];
            let a = anchors.in_room(room.id())[0];
            let b = anchors.in_room(room.id()).last().copied().unwrap();
            index.set_object(o(i), vec![(a, 0.6), (b, 0.4)]);
        }
        let q = PtknnQuery::new(q_point, 3, 1e-9).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let rs = evaluate_ptknn(&mut rng, &graph, &anchors, &index, &q, 500);
        let total = rs.total_probability();
        assert!((total - 3.0).abs() < 1e-9, "total {total}");
    }
}
