//! Deterministic timing for evaluation passes.
//!
//! [`EvaluationTimings`](crate::EvaluationTimings) are part of every
//! [`EvaluationReport`](crate::EvaluationReport), so under the default
//! [`TimingMode::Wall`] two otherwise identical runs differ in their
//! reports. [`TimingMode::Logical`] replaces wall-clock reads with a
//! monotone tick counter (1 µs per read), making the whole report —
//! timings included — bit-identical across runs and machines. The
//! determinism suite and the lint gate's `no-nondeterminism` rule both
//! lean on this: the single sanctioned `Instant::now()` call in the
//! workspace lives here, behind the `Wall` arm.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::time::{Duration, Instant};

/// How a [`Clock`] measures elapsed time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingMode {
    /// Real wall-clock time (`Instant::now`). Timings are meaningful but
    /// differ run to run.
    #[default]
    Wall,
    /// A logical tick counter: each [`Clock::now`] advances time by
    /// exactly 1 µs. Timings are reproducible bit-for-bit but measure
    /// the *number of clock reads*, not real time.
    Logical,
}

/// A timestamp captured by [`Clock::now`].
#[derive(Debug, Clone, Copy)]
pub enum ClockInstant {
    /// A wall-clock timestamp.
    Wall(Instant),
    /// A logical tick count.
    Logical(u64),
}

/// A clock that is either the real wall clock or a deterministic
/// logical counter, per [`TimingMode`].
#[derive(Debug)]
pub struct Clock {
    mode: TimingMode,
    ticks: Cell<u64>,
}

impl Clock {
    /// Builds a clock in the given mode. Logical clocks start at tick 0.
    pub fn new(mode: TimingMode) -> Self {
        Clock {
            mode,
            ticks: Cell::new(0),
        }
    }

    /// The clock's mode.
    pub fn mode(&self) -> TimingMode {
        self.mode
    }

    /// Captures the current time. In [`TimingMode::Logical`] this
    /// advances the tick counter by one.
    pub fn now(&self) -> ClockInstant {
        match self.mode {
            TimingMode::Wall => {
                // ripq-lint: allow(no-nondeterminism) -- the sole sanctioned wall-clock read; disabled entirely under TimingMode::Logical
                ClockInstant::Wall(Instant::now())
            }
            TimingMode::Logical => {
                let t = self.ticks.get();
                self.ticks.set(t + 1);
                ClockInstant::Logical(t)
            }
        }
    }

    /// Elapsed time since `start`. Logical instants yield exactly
    /// `(current tick − start tick)` microseconds, so the same sequence
    /// of [`Clock::now`] calls always produces the same durations.
    pub fn since(&self, start: ClockInstant) -> Duration {
        match start {
            ClockInstant::Wall(i) => i.elapsed(),
            ClockInstant::Logical(t) => Duration::from_micros(self.ticks.get().saturating_sub(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_is_deterministic() {
        let runs: Vec<Vec<Duration>> = (0..2)
            .map(|_| {
                let clock = Clock::new(TimingMode::Logical);
                let a = clock.now();
                let b = clock.now();
                let d1 = clock.since(b);
                let c = clock.now();
                vec![d1, clock.since(a), clock.since(c)]
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0][0], Duration::from_micros(1));
        assert_eq!(runs[0][1], Duration::from_micros(3));
        // now() post-increments: since(c) sees the counter one past c's tick.
        assert_eq!(runs[0][2], Duration::from_micros(1));
    }

    #[test]
    fn wall_clock_advances() {
        let clock = Clock::new(TimingMode::Wall);
        assert_eq!(clock.mode(), TimingMode::Wall);
        let t = clock.now();
        assert!(clock.since(t) < Duration::from_secs(60));
    }

    #[test]
    fn default_mode_is_wall() {
        assert_eq!(TimingMode::default(), TimingMode::Wall);
    }
}
