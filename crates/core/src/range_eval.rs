//! Indoor range query evaluation — **Algorithm 3**.
//!
//! Anchor points are a 1-D projection of the 2-D indoor space, so summing
//! anchor-indexed probabilities alone would ignore how much of the hallway
//! width / room area the window actually covers. Algorithm 3 compensates
//! (Fig. 6):
//!
//! * **hallways** — anchors in the window's along-axis span contribute,
//!   scaled by `w_qh / w_h` (the fraction of the hallway width the window
//!   overlaps), because an object in the hallway is "anywhere along the
//!   width … with equal probability";
//! * **rooms** — all anchors of an intersected room contribute, scaled by
//!   `Area_qr / Area_R` (objects inside rooms are uniformly distributed).

use crate::ResultSet;
use ripq_floorplan::{Axis, FloorPlan};
use ripq_geom::Rect;
use ripq_graph::{AnchorObjectIndex, AnchorSet};
use ripq_rfid::ObjectId;

/// Evaluates a probabilistic range query over the filtered `APtoObjHT`
/// index. Returns the ⟨object, probability⟩ result set.
pub fn evaluate_range(
    plan: &FloorPlan,
    anchors: &AnchorSet,
    index: &AnchorObjectIndex<ObjectId>,
    window: &Rect,
) -> ResultSet {
    let mut result_set = ResultSet::new();

    // Hallway parts (Algorithm 3, lines 4–6).
    for hallway in plan.hallways() {
        let Some(overlap) = hallway.footprint().intersection(window) else {
            continue;
        };
        let covered = anchors.hallway_anchors_in_window(hallway, window);
        if covered.is_empty() {
            continue;
        }
        let cross = match hallway.axis() {
            Axis::Horizontal => overlap.height(),
            Axis::Vertical => overlap.width(),
        };
        let ratio = (cross / hallway.cross_width()).clamp(0.0, 1.0);
        let mut partial = ResultSet::new();
        for a in covered {
            for &(o, p) in index.at_anchor(a) {
                partial.add(o, p);
            }
        }
        partial.scale(ratio);
        result_set.merge(&partial);
    }

    // Room parts (lines 7–9).
    for room in plan.rooms() {
        let overlap_area = room.footprint().intersection_area(window);
        if overlap_area <= 0.0 {
            continue;
        }
        let ratio = (overlap_area / room.area()).clamp(0.0, 1.0);
        let mut partial = ResultSet::new();
        for &a in anchors.in_room(room.id()) {
            for &(o, p) in index.at_anchor(a) {
                partial.add(o, p);
            }
        }
        partial.scale(ratio);
        result_set.merge(&partial);
    }

    result_set
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::{build_walking_graph, WalkingGraph};

    fn setup() -> (FloorPlan, WalkingGraph, AnchorSet) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        (plan, graph, anchors)
    }

    fn o(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn full_room_window_recovers_room_probability() {
        let (plan, _, anchors) = setup();
        let room = &plan.rooms()[5];
        // Object 0 is in the room with probability 0.8, split over two
        // anchors.
        let room_anchors = anchors.in_room(room.id());
        assert!(room_anchors.len() >= 2);
        let mut index = AnchorObjectIndex::new();
        index.set_object(o(0), vec![(room_anchors[0], 0.5), (room_anchors[1], 0.3)]);
        // Window covering the whole room: ratio 1, probability 0.8.
        let rs = evaluate_range(&plan, &anchors, &index, room.footprint());
        assert!((rs.probability(o(0)) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn half_room_window_halves_probability() {
        let (plan, _, anchors) = setup();
        let room = &plan.rooms()[5];
        let room_anchors = anchors.in_room(room.id());
        let mut index = AnchorObjectIndex::new();
        index.set_object(o(0), vec![(room_anchors[0], 1.0)]);
        // Left half of the room.
        let fp = room.footprint();
        let half = Rect::new(fp.min().x, fp.min().y, fp.width() / 2.0, fp.height());
        let rs = evaluate_range(&plan, &anchors, &index, &half);
        assert!(
            (rs.probability(o(0)) - 0.5).abs() < 1e-9,
            "area ratio 1/2 regardless of which anchors the half contains"
        );
    }

    #[test]
    fn hallway_width_ratio_compensation() {
        let (plan, _, anchors) = setup();
        let hallway = &plan.hallways()[0];
        // An object sitting (probability 1) on one hallway anchor.
        let aid = anchors.in_hallway(hallway.id())[3];
        let apoint = anchors.anchor(aid).point;
        let mut index = AnchorObjectIndex::new();
        index.set_object(o(0), vec![(aid, 1.0)]);
        let fp = hallway.footprint();
        // Window spanning the anchor's x but only half the hallway height.
        let window = Rect::new(apoint.x - 2.0, fp.min().y, 4.0, fp.height() / 2.0);
        let rs = evaluate_range(&plan, &anchors, &index, &window);
        assert!(
            (rs.probability(o(0)) - 0.5).abs() < 1e-9,
            "got {}",
            rs.probability(o(0))
        );
        // Full-height window: probability 1.
        let window = Rect::new(apoint.x - 2.0, fp.min().y, 4.0, fp.height());
        let rs = evaluate_range(&plan, &anchors, &index, &window);
        assert!((rs.probability(o(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_outside_everything_is_empty() {
        let (plan, _, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        index.set_object(o(0), vec![(anchors.anchors()[0].id, 1.0)]);
        let rs = evaluate_range(
            &plan,
            &anchors,
            &index,
            &Rect::new(-100.0, -100.0, 5.0, 5.0),
        );
        assert!(rs.is_empty());
    }

    #[test]
    fn window_spanning_hallway_and_room_merges_both() {
        let (plan, _, anchors) = setup();
        // Room 5 is adjacent to a hallway; build a window covering the
        // whole room plus the full hallway band above/below it.
        let room = &plan.rooms()[5];
        let door = plan.door(room.doors()[0]);
        let hallway = plan.hallway(door.hallway());
        let window = room.footprint().union(hallway.footprint());

        let room_anchor = anchors.in_room(room.id())[0];
        let hall_anchor = anchors.in_hallway(hallway.id())[0];
        let mut index = AnchorObjectIndex::new();
        index.set_object(o(0), vec![(room_anchor, 0.5), (hall_anchor, 0.5)]);
        let rs = evaluate_range(&plan, &anchors, &index, &window);
        // Window fully covers the room (ratio 1) and the hallway's full
        // width along its whole length (ratio 1): everything counted.
        assert!((rs.probability(o(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probability_never_exceeds_total_mass() {
        let (plan, _, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        // Spread an object over many anchors.
        let dist: Vec<_> = anchors
            .anchors()
            .iter()
            .take(40)
            .map(|a| (a.id, 1.0 / 40.0))
            .collect();
        index.set_object(o(0), dist);
        // Query the whole building.
        let rs = evaluate_range(&plan, &anchors, &index, &plan.bounds());
        assert!(rs.probability(o(0)) <= 1.0 + 1e-9);
        assert!(rs.probability(o(0)) > 0.5, "most mass inside the building");
    }

    #[test]
    fn multiple_objects_reported_independently() {
        let (plan, _, anchors) = setup();
        let room = &plan.rooms()[10];
        let ra = anchors.in_room(room.id());
        let mut index = AnchorObjectIndex::new();
        index.set_object(o(0), vec![(ra[0], 1.0)]);
        index.set_object(o(1), vec![(ra[ra.len() - 1], 0.25)]);
        let rs = evaluate_range(&plan, &anchors, &index, room.footprint());
        assert!((rs.probability(o(0)) - 1.0).abs() < 1e-9);
        assert!((rs.probability(o(1)) - 0.25).abs() < 1e-9);
        assert_eq!(rs.len(), 2);
    }
}
