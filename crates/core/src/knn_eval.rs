//! Indoor kNN query evaluation — **Algorithm 4**.
//!
//! "Starting from the query point q, anchor points are searched in
//! ascending order of their distance to q; the search expands from q one
//! anchor point forward per iteration, until the sum of the probability of
//! all objects indexed by the searched anchor points is no less than k."
//!
//! The result set `⟨(o₁,p₁) … (o_m,p_m)⟩` with `Σpᵢ ≥ k` contains at least
//! `k` objects; `pᵢ` is the (statistical) probability of `oᵢ` being in the
//! true kNN result.
//!
//! Our implementation visits anchors in exactly the same order as the
//! paper's frontier expansion — ascending shortest network distance from
//! `q` — using one Dijkstra pass plus a min-heap over anchors, and stops at
//! the same Σp ≥ k criterion, so it returns the identical result set.

use crate::{KnnQuery, ResultSet};
use ripq_graph::{AnchorObjectIndex, AnchorSet, DistanceOracle, WalkingGraph};
use ripq_rfid::ObjectId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry {
    dist: f64,
    anchor: ripq_graph::AnchorId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.anchor == other.anchor
    }
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance; ties by anchor id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.anchor.cmp(&self.anchor))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Evaluates a probabilistic kNN query over the filtered `APtoObjHT`
/// index.
///
/// The query point is first "approximated to the nearest edge of the
/// indoor walking graph" (§4.6). Returns the accumulated result set; its
/// total probability is ≥ `min(k, total mass in the index)`.
pub fn evaluate_knn(
    graph: &WalkingGraph,
    anchors: &AnchorSet,
    index: &AnchorObjectIndex<ObjectId>,
    query: &KnnQuery,
) -> ResultSet {
    let qpos = graph.project(query.point);
    let sp = graph.shortest_paths_from(qpos);
    evaluate_knn_with_paths(graph, anchors, index, query, &sp)
}

/// [`evaluate_knn`] over a caller-provided Dijkstra result.
///
/// Registered (standing) kNN queries have a fixed query point, so the
/// system facade computes each query's [`ripq_graph::ShortestPaths`] once and reuses
/// it across evaluation passes instead of re-running Dijkstra per tick.
pub fn evaluate_knn_with_paths(
    graph: &WalkingGraph,
    anchors: &AnchorSet,
    index: &AnchorObjectIndex<ObjectId>,
    query: &KnnQuery,
    sp: &ripq_graph::ShortestPaths,
) -> ResultSet {
    // Seed the frontier with every anchor's network distance. (One
    // distance lookup per anchor is O(1) after the Dijkstra pass.)
    let mut heap = BinaryHeap::with_capacity(anchors.anchors().len());
    for a in anchors.anchors() {
        heap.push(Entry {
            dist: sp.distance_to(graph, a.pos),
            anchor: a.id,
        });
    }

    let mut result_set = ResultSet::new();
    let target = query.k as f64;
    while let Some(Entry { anchor, .. }) = heap.pop() {
        for &(o, p) in index.at_anchor(anchor) {
            result_set.add(o, p);
        }
        if result_set.total_probability() >= target {
            break;
        }
    }
    result_set
}

/// [`evaluate_knn`] through the landmark distance oracle's lazy ascending
/// anchor scan ([`DistanceOracle::scan`]).
///
/// The scan emits anchors in exactly the `(distance, anchor id)` order the
/// eager heap above pops them, with bit-identical distance values — so the
/// result set is byte-for-byte the same — but it only settles the graph
/// region the Σp ≥ k stop actually required, instead of paying a full
/// Dijkstra pass plus one heap entry per anchor up front.
pub fn evaluate_knn_with_oracle(
    graph: &WalkingGraph,
    anchors: &AnchorSet,
    index: &AnchorObjectIndex<ObjectId>,
    query: &KnnQuery,
    oracle: &DistanceOracle,
) -> ResultSet {
    let qpos = graph.project(query.point);
    let mut result_set = ResultSet::new();
    let target = query.k as f64;
    for (anchor, _) in oracle.scan(graph, anchors, qpos) {
        for &(o, p) in index.at_anchor(anchor) {
            result_set.add(o, p);
        }
        if result_set.total_probability() >= target {
            break;
        }
    }
    result_set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryId;
    use ripq_floorplan::{office_building, FloorPlan, OfficeParams};
    use ripq_graph::build_walking_graph;

    fn setup() -> (FloorPlan, WalkingGraph, AnchorSet) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        (plan, graph, anchors)
    }

    fn o(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    /// Places `objects[i]` with probability 1 on the anchor nearest to the
    /// given point.
    fn place(
        graph: &WalkingGraph,
        anchors: &AnchorSet,
        index: &mut AnchorObjectIndex<ObjectId>,
        obj: ObjectId,
        p: ripq_geom::Point2,
    ) {
        let a = anchors.nearest(graph.project(p));
        index.set_object(obj, vec![(a, 1.0)]);
    }

    #[test]
    fn k1_returns_nearest_certain_object() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let h0 = plan.hallways()[0].footprint().center();
        // Object 0 close to the query, object 1 far away.
        place(&graph, &anchors, &mut index, o(0), h0);
        place(
            &graph,
            &anchors,
            &mut index,
            o(1),
            plan.hallways()[2].footprint().center(),
        );
        let q = KnnQuery::new(QueryId::new(0), h0, 1).unwrap();
        let rs = evaluate_knn(&graph, &anchors, &index, &q);
        assert!((rs.probability(o(0)) - 1.0).abs() < 1e-9);
        assert_eq!(rs.probability(o(1)), 0.0, "search stopped before o1");
    }

    #[test]
    fn accumulates_until_k() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let base = plan.hallways()[0].footprint().center();
        for i in 0..5 {
            place(
                &graph,
                &anchors,
                &mut index,
                o(i),
                base + ripq_geom::Point2::new(i as f64 * 3.0, 0.0),
            );
        }
        let q = KnnQuery::new(QueryId::new(0), base, 3).unwrap();
        let rs = evaluate_knn(&graph, &anchors, &index, &q);
        assert!(rs.total_probability() >= 3.0 - 1e-9);
        assert!(rs.len() >= 3, "at least k objects returned");
        // The three nearest are the first three placed.
        for i in 0..3 {
            assert!((rs.probability(o(i)) - 1.0).abs() < 1e-9);
        }
        assert_eq!(rs.probability(o(4)), 0.0);
    }

    #[test]
    fn uncertain_objects_contribute_fractionally() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        let base = plan.hallways()[0].footprint().center();
        let near = anchors.nearest(graph.project(base));
        let far = anchors.nearest(graph.project(plan.hallways()[2].footprint().center()));
        // Object 0: 50/50 near/far. Object 1: certain, slightly farther
        // than the near anchor.
        index.set_object(o(0), vec![(near, 0.5), (far, 0.5)]);
        place(
            &graph,
            &anchors,
            &mut index,
            o(1),
            base + ripq_geom::Point2::new(4.0, 0.0),
        );
        let q = KnnQuery::new(QueryId::new(0), base, 1).unwrap();
        let rs = evaluate_knn(&graph, &anchors, &index, &q);
        // Expansion picks up o0's 0.5 first, continues (0.5 < 1), then o1's
        // 1.0 pushes the total past k=1.
        assert!((rs.probability(o(0)) - 0.5).abs() < 1e-9);
        assert!((rs.probability(o(1)) - 1.0).abs() < 1e-9);
        assert!(rs.total_probability() >= 1.0);
    }

    #[test]
    fn result_at_least_k_objects_when_available() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        for i in 0..10 {
            place(
                &graph,
                &anchors,
                &mut index,
                o(i),
                plan.rooms()[i as usize * 3].center(),
            );
        }
        for k in [1usize, 3, 5, 9] {
            let q =
                KnnQuery::new(QueryId::new(0), plan.hallways()[1].footprint().center(), k).unwrap();
            let rs = evaluate_knn(&graph, &anchors, &index, &q);
            assert!(rs.len() >= k, "k={k}: got {}", rs.len());
            assert!(rs.total_probability() >= k as f64 - 1e-9);
        }
    }

    #[test]
    fn insufficient_mass_returns_everything() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        place(&graph, &anchors, &mut index, o(0), plan.rooms()[0].center());
        let q = KnnQuery::new(QueryId::new(0), plan.rooms()[29].center(), 5).unwrap();
        let rs = evaluate_knn(&graph, &anchors, &index, &q);
        // Only one object exists: the scan exhausts all anchors and returns
        // it rather than looping forever.
        assert_eq!(rs.len(), 1);
        assert!((rs.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_index_returns_empty_set() {
        let (plan, graph, anchors) = setup();
        let index = AnchorObjectIndex::new();
        let q = KnnQuery::new(QueryId::new(0), plan.rooms()[0].center(), 3).unwrap();
        let rs = evaluate_knn(&graph, &anchors, &index, &q);
        assert!(rs.is_empty());
    }

    #[test]
    fn oracle_backend_matches_dijkstra_bit_for_bit() {
        let (plan, graph, anchors) = setup();
        let mut index = AnchorObjectIndex::new();
        for i in 0..8 {
            place(
                &graph,
                &anchors,
                &mut index,
                o(i),
                plan.rooms()[i as usize * 3 + 1].center(),
            );
        }
        let oracle = ripq_graph::DistanceOracle::build(&graph, ripq_graph::DEFAULT_LANDMARKS);
        for (qp, k) in [
            (plan.hallways()[0].footprint().center(), 1),
            (plan.hallways()[1].footprint().center(), 3),
            (plan.rooms()[7].center(), 5),
        ] {
            let q = KnnQuery::new(QueryId::new(0), qp, k).unwrap();
            let eager = evaluate_knn(&graph, &anchors, &index, &q);
            let lazy = evaluate_knn_with_oracle(&graph, &anchors, &index, &q, &oracle);
            let bits = |rs: &ResultSet| -> Vec<(ObjectId, u64)> {
                rs.iter().map(|(o, p)| (o, p.to_bits())).collect()
            };
            assert_eq!(bits(&eager), bits(&lazy), "k={k}");
        }
        let stats = oracle.stats();
        assert_eq!(stats.scan_queries, 3);
        assert!(stats.scan_settled > 0);
    }

    #[test]
    fn network_distance_not_euclidean_governs_order() {
        // Two objects at the same Euclidean distance from q, but one is in
        // a room right next to q's hallway position while the other is
        // across a wall (long walk around): the room one must be found
        // first.
        let (plan, graph, anchors) = setup();
        let room = &plan.rooms()[1];
        let door = plan.door(room.doors()[0]);
        let q_point = door.position(); // on the hallway boundary by the door
        let mut index = AnchorObjectIndex::new();
        // Object 0 inside the adjacent room (short walk through door).
        place(&graph, &anchors, &mut index, o(0), room.center());
        // Object 1 on the other side of the building.
        place(
            &graph,
            &anchors,
            &mut index,
            o(1),
            plan.rooms()[25].center(),
        );
        let q = KnnQuery::new(QueryId::new(0), q_point, 1).unwrap();
        let rs = evaluate_knn(&graph, &anchors, &index, &q);
        assert!((rs.probability(o(0)) - 1.0).abs() < 1e-9);
        assert_eq!(rs.probability(o(1)), 0.0);
    }
}
