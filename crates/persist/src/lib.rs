//! # ripq-persist — crash-safe persistence primitives
//!
//! Dependency-free building blocks for durable snapshots of pipeline
//! state (particle cache, collector watermark, RNG streams):
//!
//! * a **canonical little-endian codec** ([`ByteWriter`] /
//!   [`ByteReader`]) — fixed-width integers, `f64` as IEEE-754 bits,
//!   length-prefixed strings and sequences, so equal state always
//!   encodes to byte-identical payloads;
//! * a table-based **CRC32** (IEEE polynomial, [`crc32`]) over the
//!   payload;
//! * a **framed snapshot format** ([`seal_snapshot`] /
//!   [`open_snapshot`]): magic, format version, payload length, CRC,
//!   payload — torn, corrupt and stale-version files are detected, never
//!   trusted;
//! * **atomic file replacement** ([`write_atomic`]): write a sibling
//!   temp file, fsync, then rename over the target, so a crash mid-write
//!   leaves either the old snapshot or the new one, never a torn mix.
//!
//! The error taxonomy ([`PersistError`]) distinguishes a missing
//! snapshot (cold start) from a damaged one (quarantine + cold rebuild);
//! callers decide policy, this crate only ever reports.

use std::fmt;
use std::path::{Path, PathBuf};

mod codec;
mod crc;

pub use codec::{ByteReader, ByteWriter};
pub use crc::crc32;

/// Leading magic of every framed snapshot file.
pub const MAGIC: [u8; 8] = *b"RIPQSNAP";

/// Current snapshot format version. Bump on any layout change; readers
/// refuse other versions with [`PersistError::StaleVersion`].
pub const FORMAT_VERSION: u32 = 1;

/// Size of the frame header preceding the payload: magic (8) + version
/// (4) + payload length (8) + payload CRC32 (4).
pub const HEADER_LEN: usize = 24;

/// Everything that can go wrong reading or writing a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// No snapshot file exists — a cold start, not a failure.
    Missing,
    /// An OS-level read/write/rename failed; carries the rendered error.
    Io(String),
    /// The file (or a length-prefixed field inside it) is shorter than
    /// its own framing claims — a torn or truncated write.
    Torn,
    /// The leading magic bytes are wrong — not a snapshot file.
    BadMagic,
    /// The payload checksum does not match the header — bit rot or a
    /// partially overwritten file.
    BadCrc {
        /// CRC32 recorded in the header.
        expected: u32,
        /// CRC32 of the payload actually read.
        actual: u32,
    },
    /// The snapshot was written by an incompatible format version.
    StaleVersion {
        /// Version found in the file.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Missing => write!(f, "no snapshot file"),
            PersistError::Io(msg) => write!(f, "io error: {msg}"),
            PersistError::Torn => write!(f, "torn snapshot (truncated frame or field)"),
            PersistError::BadMagic => write!(f, "bad snapshot magic"),
            PersistError::BadCrc { expected, actual } => write!(
                f,
                "snapshot checksum mismatch (header {expected:#010x}, payload {actual:#010x})"
            ),
            PersistError::StaleVersion { found, supported } => write!(
                f,
                "snapshot format version {found} unsupported (this build reads {supported})"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

/// Frames `payload` into a self-checking snapshot: magic, version,
/// length, CRC32, payload.
pub fn seal_snapshot(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a framed snapshot and returns its payload slice. Every
/// failure mode maps to one [`PersistError`] variant; nothing panics on
/// arbitrary bytes.
pub fn open_snapshot(bytes: &[u8]) -> Result<&[u8], PersistError> {
    if bytes.len() < HEADER_LEN {
        return Err(if bytes.starts_with(&MAGIC) || MAGIC.starts_with(bytes) {
            PersistError::Torn
        } else {
            PersistError::BadMagic
        });
    }
    if bytes[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(PersistError::StaleVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let len = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    let expected = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    let body = &bytes[HEADER_LEN..];
    if (body.len() as u64) != len {
        return Err(PersistError::Torn);
    }
    let actual = crc32(body);
    if actual != expected {
        return Err(PersistError::BadCrc { expected, actual });
    }
    Ok(body)
}

/// Writes `bytes` to `path` atomically: the content goes to a sibling
/// `<name>.tmp` first, is synced to disk, then renamed over `path`. A
/// crash at any point leaves either the previous file or the complete
/// new one.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    use std::io::Write as _;
    let tmp = sibling(path, "tmp");
    let io_err = |e: std::io::Error| PersistError::Io(format!("{}: {e}", tmp.display()));
    // ripq-lint: allow(atomic-persistence) -- this IS the atomic-write primitive: the create targets a sibling temp file that is fsynced and renamed over the destination below
    let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
    file.write_all(bytes).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    drop(file);
    std::fs::rename(&tmp, path)
        .map_err(|e| PersistError::Io(format!("{} -> {}: {e}", tmp.display(), path.display())))
}

/// Loads a framed snapshot from `path`, validating the frame. A missing
/// file is [`PersistError::Missing`]; any damage is reported, never
/// panicked on.
pub fn load_snapshot(path: &Path) -> Result<Vec<u8>, PersistError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(PersistError::Missing),
        Err(e) => return Err(PersistError::Io(format!("{}: {e}", path.display()))),
    };
    open_snapshot(&bytes).map(<[u8]>::to_vec)
}

/// Moves a damaged snapshot aside to `<name>.corrupt` so the next run
/// cold-starts instead of tripping on it again. Returns the quarantine
/// path.
pub fn quarantine(path: &Path) -> Result<PathBuf, PersistError> {
    let target = sibling(path, "corrupt");
    std::fs::rename(path, &target).map_err(|e| {
        PersistError::Io(format!("{} -> {}: {e}", path.display(), target.display()))
    })?;
    Ok(target)
}

/// `path` with `suffix` appended to its file name (`a/b.ckpt` →
/// `a/b.ckpt.<suffix>`), staying in the same directory so the final
/// rename is within one filesystem.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".");
    name.push(suffix);
    path.with_file_name(name)
}

/// Human-readable description of the on-disk frame — the format contract
/// pinned by the `tests/fixtures/expected_snapshot_header.txt` golden.
/// Any layout change must show up here (and bump [`FORMAT_VERSION`]).
pub fn format_spec() -> String {
    format!(
        "ripq snapshot frame v{FORMAT_VERSION}\n\
         magic:    {:?} (8 bytes)\n\
         version:  u32 LE = {FORMAT_VERSION}\n\
         length:   u64 LE payload byte count\n\
         crc32:    u32 LE, IEEE polynomial 0xEDB88320 over payload\n\
         payload:  canonical little-endian encoding\n\
         encoding: u8 | u32 LE | u64 LE | f64 as IEEE-754 bits (u64 LE) |\n\
         \x20         bool as u8 0/1 | str/seq as u32 LE length prefix + items\n\
         write:    sibling .tmp file, fsync, rename over target\n\
         damage:   torn/bad-magic/bad-crc/stale-version files are\n\
         \x20         quarantined to <name>.corrupt and rebuilt cold\n",
        std::str::from_utf8(&MAGIC).unwrap_or("RIPQSNAP"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip() {
        let payload = b"hello snapshot".to_vec();
        let framed = seal_snapshot(&payload);
        assert_eq!(open_snapshot(&framed).unwrap(), &payload[..]);
        assert_eq!(framed.len(), HEADER_LEN + payload.len());
    }

    #[test]
    fn empty_payload_is_valid() {
        let framed = seal_snapshot(&[]);
        assert_eq!(open_snapshot(&framed).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let framed = seal_snapshot(b"determinism is a feature");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    open_snapshot(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_is_torn_or_bad_magic() {
        let framed = seal_snapshot(b"payload bytes");
        for cut in 0..framed.len() {
            let err = open_snapshot(&framed[..cut]).unwrap_err();
            assert!(
                matches!(err, PersistError::Torn | PersistError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn stale_version_is_reported() {
        let mut framed = seal_snapshot(b"x");
        framed[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            open_snapshot(&framed).unwrap_err(),
            PersistError::StaleVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn wrong_magic_is_reported() {
        let mut framed = seal_snapshot(b"x");
        framed[0] = b'X';
        assert_eq!(open_snapshot(&framed).unwrap_err(), PersistError::BadMagic);
        assert_eq!(
            open_snapshot(b"not a snapshot at all, definitely").unwrap_err(),
            PersistError::BadMagic
        );
    }

    #[test]
    fn atomic_write_load_round_trip_and_quarantine() {
        let dir = std::env::temp_dir().join("ripq_persist_test_rt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        assert_eq!(load_snapshot(&path).unwrap_err(), PersistError::Missing);
        write_atomic(&path, &seal_snapshot(b"alpha")).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), b"alpha");
        // Replacement is atomic: the temp sibling never survives.
        write_atomic(&path, &seal_snapshot(b"beta")).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), b"beta");
        assert!(!dir.join("state.ckpt.tmp").exists());
        // Corrupt in place, then quarantine.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path).unwrap_err(),
            PersistError::BadCrc { .. }
        ));
        let moved = quarantine(&path).unwrap();
        assert_eq!(moved, dir.join("state.ckpt.corrupt"));
        assert!(moved.exists());
        assert_eq!(load_snapshot(&path).unwrap_err(), PersistError::Missing);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_target_is_an_io_error() {
        let dir = std::env::temp_dir().join("ripq_persist_test_missing_parent");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("state.ckpt");
        assert!(matches!(
            write_atomic(&path, b"x").unwrap_err(),
            PersistError::Io(_)
        ));
    }

    #[test]
    fn format_spec_names_the_contract() {
        let spec = format_spec();
        assert!(spec.contains("RIPQSNAP"));
        assert!(spec.contains(&format!("v{FORMAT_VERSION}")));
        assert!(spec.contains("crc32"));
        assert!(spec.contains("rename over target"));
    }
}
