//! The canonical little-endian codec.
//!
//! Every multi-byte value is little-endian; `f64` travels as its
//! IEEE-754 bit pattern so encode/decode is exactly lossless (NaN
//! payloads included); strings and sequences carry a `u32` length
//! prefix. Equal state therefore always encodes to byte-identical
//! buffers — the property the checkpoint byte-identity tests rely on.

use crate::PersistError;

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits (lossless).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte, `0` or `1`.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends `Some(v)`/`None` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_u64(v);
            }
            None => self.put_u8(0),
        }
    }

    /// Appends a UTF-8 string with a `u32` length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a raw byte slice with a `u32` length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Appends a sequence length prefix (`u32`); follow with the items.
    pub fn put_seq_len(&mut self, n: usize) {
        self.put_u32(n as u32);
    }
}

/// Cursor-based decoder over an encoded buffer. Every read is
/// bounds-checked: running past the end (a torn field) is
/// [`PersistError::Torn`], never a panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the buffer is fully consumed (trailing garbage is as
    /// suspicious as truncation).
    pub fn finish(self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::Torn)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Torn);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its raw bits.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any byte other than `0`/`1` is corruption.
    pub fn get_bool(&mut self) -> Result<bool, PersistError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Torn),
        }
    }

    /// Reads an optional `u64` written by [`ByteWriter::put_opt_u64`].
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, PersistError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            _ => Err(PersistError::Torn),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, PersistError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Torn)
    }

    /// Reads a length-prefixed raw byte vector.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, PersistError> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a sequence length prefix, bounds-checked against the bytes
    /// actually remaining (`min_item_bytes` per item) so a corrupted
    /// length cannot drive a huge allocation.
    pub fn get_seq_len(&mut self, min_item_bytes: usize) -> Result<usize, PersistError> {
        let n = self.get_u32()? as usize;
        if n.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(PersistError::Torn);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.125);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_bool(false);
        w.put_opt_u64(Some(42));
        w.put_opt_u64(None);
        w.put_str("snapshot ✓");
        w.put_bytes(&[1, 2, 3]);
        w.put_seq_len(5);
        for i in 0..5u8 {
            w.put_u8(i);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_opt_u64().unwrap(), Some(42));
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_str().unwrap(), "snapshot ✓");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_seq_len(1).unwrap(), 5);
        for i in 0..5u8 {
            assert_eq!(r.get_u8().unwrap(), i);
        }
        r.finish().unwrap();
    }

    #[test]
    fn equal_state_encodes_identically() {
        let encode = || {
            let mut w = ByteWriter::new();
            w.put_u64(123);
            w.put_f64(0.1 + 0.2);
            w.put_str("abc");
            w.into_bytes()
        };
        assert_eq!(encode(), encode());
    }

    #[test]
    fn truncated_reads_are_torn_not_panics() {
        let mut w = ByteWriter::new();
        w.put_u64(9);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(r.get_u64().unwrap_err(), PersistError::Torn);
        let mut r = ByteReader::new(&[1]);
        assert_eq!(r.get_opt_u64().unwrap_err(), PersistError::Torn);
        let mut r = ByteReader::new(&[3, 0, 0, 0, b'a']);
        assert_eq!(r.get_str().unwrap_err(), PersistError::Torn);
    }

    #[test]
    fn invalid_tags_are_torn() {
        let mut r = ByteReader::new(&[2]);
        assert_eq!(r.get_bool().unwrap_err(), PersistError::Torn);
        let mut r = ByteReader::new(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(r.get_opt_u64().unwrap_err(), PersistError::Torn);
    }

    #[test]
    fn huge_sequence_lengths_are_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_seq_len(8).unwrap_err(), PersistError::Torn);
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.finish().unwrap_err(), PersistError::Torn);
    }
}
