//! Table-based CRC32 (IEEE 802.3 polynomial, reflected form
//! `0xEDB88320`) — the checksum of the snapshot frame.

/// The 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    })
}

/// CRC32 of `bytes` (IEEE polynomial, init `0xFFFFFFFF`, final XOR) —
/// the same function `cksum`-family tools call `crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_every_bit() {
        let base = crc32(b"abcdef");
        for i in 0..6 {
            let mut m = *b"abcdef";
            m[i] ^= 1;
            assert_ne!(crc32(&m), base, "bit flip at byte {i} not detected");
        }
    }
}
