//! RFID readers.

use ripq_geom::Point2;
use ripq_graph::GraphPos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an RFID reader (`dᵢ` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReaderId(u32);

impl ReaderId {
    /// Wraps a raw dense index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        ReaderId(raw)
    }

    /// The raw dense index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The raw index as `usize`, for direct `Vec` indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ReaderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// An RFID reader deployed on a hallway centerline.
///
/// A reader detects tags within `activation_range` meters of its position
/// (Euclidean). The paper assumes the range covers the hallway width, so a
/// reader partitions its hallway into "before" and "after" sections (§3.2,
/// Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reader {
    id: ReaderId,
    position: Point2,
    graph_pos: GraphPos,
    activation_range: f64,
}

impl Reader {
    /// Creates a reader at `position` (with its projection onto the walking
    /// graph precomputed as `graph_pos`).
    pub fn new(id: ReaderId, position: Point2, graph_pos: GraphPos, activation_range: f64) -> Self {
        Reader {
            id,
            position,
            graph_pos,
            activation_range,
        }
    }

    /// This reader's identifier.
    #[inline]
    pub fn id(&self) -> ReaderId {
        self.id
    }

    /// 2-D position of the reader.
    #[inline]
    pub fn position(&self) -> Point2 {
        self.position
    }

    /// The reader's position projected onto the walking graph (used for
    /// network-distance pruning and particle seeding).
    #[inline]
    pub fn graph_pos(&self) -> GraphPos {
        self.graph_pos
    }

    /// Detection radius in meters (`d.range` in §4.3).
    #[inline]
    pub fn activation_range(&self) -> f64 {
        self.activation_range
    }

    /// Returns `true` when `p` is within the activation range.
    #[inline]
    pub fn covers(&self, p: Point2) -> bool {
        self.position.distance_sq(p) <= self.activation_range * self.activation_range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_graph::EdgeId;

    fn reader(range: f64) -> Reader {
        Reader::new(
            ReaderId::new(0),
            Point2::new(10.0, 10.0),
            GraphPos::new(EdgeId::new(0), 10.0),
            range,
        )
    }

    #[test]
    fn covers_is_closed_disk() {
        let r = reader(2.0);
        assert!(r.covers(Point2::new(10.0, 10.0)));
        assert!(r.covers(Point2::new(12.0, 10.0)));
        assert!(!r.covers(Point2::new(12.1, 10.0)));
        assert!(r.covers(Point2::new(11.0, 11.0)));
    }

    #[test]
    fn display() {
        assert_eq!(ReaderId::new(4).to_string(), "d4");
    }
}
