//! The [`ReadingStore`] abstraction over reading storage.
//!
//! The particle filter and the symbolic baseline only need four lookups
//! from whatever stores the readings; abstracting them lets the same
//! inference code run against the space-bounded snapshot collector
//! ([`crate::DataCollector`]) *and* against a frozen instant of the
//! full-history collector ([`crate::HistoryCollector::view_at`]) for
//! historical queries.

use crate::{AggregatedReadings, DataCollector, ObjectId, ReaderId};

/// Read access to per-object aggregated RFID readings.
pub trait ReadingStore {
    /// The retained aggregated readings of an object.
    fn aggregated(&self, o: ObjectId) -> Option<AggregatedReadings<'_>>;

    /// The most recent detecting reader and the second it last detected
    /// the object.
    fn last_detection(&self, o: ObjectId) -> Option<(ReaderId, u64)>;

    /// The second-most-recent and most recent detecting devices
    /// (`dᵢ, dⱼ` of Algorithm 2).
    fn last_two_devices(&self, o: ObjectId) -> Option<(ReaderId, Option<ReaderId>)>;

    /// Identity of the most recent detection episode:
    /// `(reader, first_second, last_second)`.
    fn last_episode(&self, o: ObjectId) -> Option<(ReaderId, u64, u64)>;

    /// Every object the store knows about, sorted by id.
    fn object_ids(&self) -> Vec<ObjectId>;
}

impl ReadingStore for DataCollector {
    fn aggregated(&self, o: ObjectId) -> Option<AggregatedReadings<'_>> {
        DataCollector::aggregated(self, o)
    }

    fn last_detection(&self, o: ObjectId) -> Option<(ReaderId, u64)> {
        DataCollector::last_detection(self, o)
    }

    fn last_two_devices(&self, o: ObjectId) -> Option<(ReaderId, Option<ReaderId>)> {
        DataCollector::last_two_devices(self, o)
    }

    fn last_episode(&self, o: ObjectId) -> Option<(ReaderId, u64, u64)> {
        DataCollector::last_episode(self, o)
    }

    fn object_ids(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.objects().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_implements_store() {
        let mut c = DataCollector::new();
        let o = ObjectId::new(1);
        let d = ReaderId::new(0);
        c.ingest_second(0, &[(o, d)]);
        c.ingest_second(1, &[]);
        // Call through the trait object to prove object-unsafety is not an
        // issue for generic use (dyn is not required but must not be
        // blocked by accident — the trait is dyn-compatible).
        let store: &dyn ReadingStore = &c;
        assert_eq!(store.last_detection(o), Some((d, 0)));
        assert_eq!(store.object_ids(), vec![o]);
        assert!(store.aggregated(o).is_some());
        assert_eq!(store.last_two_devices(o), Some((d, None)));
        assert_eq!(store.last_episode(o), Some((d, 0, 0)));
    }
}
