//! Full-history reading storage for historical queries.
//!
//! §4.1: "since this research focuses on snapshot queries launched at the
//! present time, the data collector module can be designed as above to
//! save storage space. For systems which are required to answer historical
//! queries, the data collector module needs to be modified accordingly to
//! keep a longer reading history." This module is that modification:
//! [`HistoryCollector`] retains every aggregated entry, and
//! [`HistoryCollector::view_at`] materializes a read-only view that
//! behaves exactly like the space-bounded [`crate::DataCollector`] *as of
//! any past second* — the particle filter replays it unchanged and
//! answers "where was everyone at 10:42?" queries.

use crate::{AggregatedReadings, ObjectId, ReaderId, ReadingStore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One full detection episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Episode {
    reader: ReaderId,
    first_second: u64,
    last_second: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ObjectHistory {
    start_second: u64,
    entries: Vec<Option<ReaderId>>,
    episodes: Vec<Episode>,
}

/// A data collector that never discards history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HistoryCollector {
    objects: HashMap<ObjectId, ObjectHistory>,
    current_second: Option<u64>,
    /// Same-reader re-detections within this many seconds continue the
    /// episode (mirrors [`crate::DataCollector`]).
    gap_tolerance: u64,
}

impl HistoryCollector {
    /// Creates an empty history collector.
    pub fn new() -> Self {
        HistoryCollector {
            gap_tolerance: 2,
            ..Default::default()
        }
    }

    /// Ingests pre-aggregated per-second detections (at most one reader
    /// per object). Seconds must be non-decreasing.
    pub fn ingest_second(&mut self, second: u64, detections: &[(ObjectId, ReaderId)]) {
        if let Some(cur) = self.current_second {
            if second < cur {
                return; // stale batch (see DataCollector::ingest_second)
            }
        }
        self.current_second = Some(second);
        let mut det: HashMap<ObjectId, ReaderId> = HashMap::new();
        for &(o, r) in detections {
            det.insert(o, r);
        }
        let ids: Vec<ObjectId> = self.objects.keys().copied().collect();
        for id in ids {
            let reading = det.remove(&id);
            self.append(id, second, reading);
        }
        for (id, reader) in det {
            self.objects.insert(
                id,
                ObjectHistory {
                    start_second: second,
                    entries: Vec::new(),
                    episodes: Vec::new(),
                },
            );
            self.append(id, second, Some(reader));
        }
    }

    fn append(&mut self, id: ObjectId, second: u64, reading: Option<ReaderId>) {
        let gap = self.gap_tolerance;
        let st = self.objects.get_mut(&id).expect("caller ensures presence");
        let expected = st.start_second + st.entries.len() as u64;
        for _ in expected..second {
            st.entries.push(None);
        }
        st.entries.push(reading);
        if let Some(reader) = reading {
            let cont = st
                .episodes
                .last()
                .is_some_and(|e| e.reader == reader && second - e.last_second <= gap + 1);
            if cont {
                st.episodes.last_mut().expect("checked").last_second = second;
            } else {
                st.episodes.push(Episode {
                    reader,
                    first_second: second,
                    last_second: second,
                });
            }
        }
    }

    /// The last second fed in.
    pub fn current_second(&self) -> Option<u64> {
        self.current_second
    }

    /// Total retained entries across all objects (storage diagnostic; the
    /// §4.1 space argument is that [`crate::DataCollector`]'s equivalent
    /// figure stays bounded while this one grows with time).
    pub fn total_entries(&self) -> usize {
        self.objects.values().map(|h| h.entries.len()).sum()
    }

    /// A read-only view of the world as of `second` (inclusive),
    /// reproducing the snapshot collector's two-episode retention policy
    /// at that instant.
    pub fn view_at(&self, second: u64) -> HistoryView<'_> {
        HistoryView {
            inner: self,
            at: second,
        }
    }
}

/// The state of a [`HistoryCollector`] as of a fixed past second.
#[derive(Debug, Clone, Copy)]
pub struct HistoryView<'a> {
    inner: &'a HistoryCollector,
    at: u64,
}

impl HistoryView<'_> {
    /// The second this view is frozen at.
    pub fn at(&self) -> u64 {
        self.at
    }

    /// Episodes of `o` clipped to the view instant: drops episodes that
    /// start later, truncates one spanning it.
    fn episodes_at(&self, o: ObjectId) -> Option<(&ObjectHistory, Vec<Episode>)> {
        let st = self.inner.objects.get(&o)?;
        if st.start_second > self.at {
            return None; // object not yet seen at this instant
        }
        let eps: Vec<Episode> = st
            .episodes
            .iter()
            .filter(|e| e.first_second <= self.at)
            .map(|e| Episode {
                last_second: e.last_second.min(self.at),
                ..*e
            })
            .collect();
        if eps.is_empty() {
            return None;
        }
        Some((st, eps))
    }
}

impl ReadingStore for HistoryView<'_> {
    fn aggregated(&self, o: ObjectId) -> Option<AggregatedReadings<'_>> {
        let (st, eps) = self.episodes_at(o)?;
        // Retention: keep from the older of the two most recent episodes.
        let keep_from = if eps.len() >= 2 {
            eps[eps.len() - 2].first_second
        } else {
            eps[0].first_second
        };
        let lo = (keep_from - st.start_second) as usize;
        let hi = ((self.at - st.start_second) as usize + 1).min(st.entries.len());
        Some(AggregatedReadings {
            start_second: keep_from,
            entries: &st.entries[lo..hi],
        })
    }

    fn last_detection(&self, o: ObjectId) -> Option<(ReaderId, u64)> {
        let (_, eps) = self.episodes_at(o)?;
        eps.last().map(|e| (e.reader, e.last_second))
    }

    fn last_two_devices(&self, o: ObjectId) -> Option<(ReaderId, Option<ReaderId>)> {
        let (_, eps) = self.episodes_at(o)?;
        match eps.as_slice() {
            [] => None,
            [only] => Some((only.reader, None)),
            [.., prev, last] => Some((prev.reader, Some(last.reader))),
        }
    }

    fn last_episode(&self, o: ObjectId) -> Option<(ReaderId, u64, u64)> {
        let (_, eps) = self.episodes_at(o)?;
        eps.last()
            .map(|e| (e.reader, e.first_second, e.last_second))
    }

    fn object_ids(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self
            .inner
            .objects
            .iter()
            .filter(|(_, h)| h.start_second <= self.at)
            .map(|(&o, _)| o)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataCollector;

    const O: ObjectId = ObjectId::new(0);
    const D1: ReaderId = ReaderId::new(1);
    const D2: ReaderId = ReaderId::new(2);
    const D3: ReaderId = ReaderId::new(3);

    fn feed_both(plan: &[(u64, Option<ReaderId>)]) -> (HistoryCollector, DataCollector) {
        let mut h = HistoryCollector::new();
        let mut d = DataCollector::new();
        for &(s, r) in plan {
            let det: Vec<(ObjectId, ReaderId)> = r.map(|r| (O, r)).into_iter().collect();
            h.ingest_second(s, &det);
            d.ingest_second(s, &det);
        }
        (h, d)
    }

    #[test]
    fn view_at_now_matches_snapshot_collector() {
        let plan = [
            (0, Some(D1)),
            (1, Some(D1)),
            (2, None),
            (3, Some(D2)),
            (4, None),
            (5, Some(D3)),
            (6, None),
        ];
        let (h, d) = feed_both(&plan);
        let v = h.view_at(6);
        // Retention agrees with the snapshot collector.
        let dv = d.aggregated(O).unwrap();
        let hv = ReadingStore::aggregated(&v, O).unwrap();
        assert_eq!(hv.start_second, dv.start_second);
        assert_eq!(hv.entries, dv.entries);
        assert_eq!(ReadingStore::last_two_devices(&v, O), d.last_two_devices(O));
        assert_eq!(ReadingStore::last_detection(&v, O), d.last_detection(O));
        assert_eq!(ReadingStore::last_episode(&v, O), d.last_episode(O));
    }

    #[test]
    fn view_at_past_instant_rewinds() {
        let plan = [
            (0, Some(D1)),
            (1, None),
            (2, Some(D2)),
            (3, None),
            (4, Some(D3)),
        ];
        let (h, _) = feed_both(&plan);
        // As of t=3, D3 has not happened: last two devices are D1, D2.
        let v = h.view_at(3);
        assert_eq!(ReadingStore::last_two_devices(&v, O), Some((D1, Some(D2))));
        assert_eq!(ReadingStore::last_detection(&v, O), Some((D2, 2)));
        let agg = ReadingStore::aggregated(&v, O).unwrap();
        assert_eq!(agg.start_second, 0);
        assert_eq!(agg.entries, &[Some(D1), None, Some(D2), None]);
    }

    #[test]
    fn view_truncates_spanning_episode() {
        let plan = [(0, Some(D1)), (1, Some(D1)), (2, Some(D1))];
        let (h, _) = feed_both(&plan);
        let v = h.view_at(1);
        assert_eq!(ReadingStore::last_episode(&v, O), Some((D1, 0, 1)));
        let agg = ReadingStore::aggregated(&v, O).unwrap();
        assert_eq!(agg.entries.len(), 2);
    }

    #[test]
    fn object_unknown_before_first_detection() {
        let plan = [(5, Some(D1))];
        let (h, _) = feed_both(&plan);
        let v = h.view_at(3);
        assert!(ReadingStore::aggregated(&v, O).is_none());
        assert!(ReadingStore::last_detection(&v, O).is_none());
        assert!(v.object_ids().is_empty());
        let v5 = h.view_at(5);
        assert_eq!(v5.object_ids(), vec![O]);
    }

    #[test]
    fn history_grows_while_snapshot_stays_bounded() {
        let mut h = HistoryCollector::new();
        let mut d = DataCollector::new();
        // Cycle through three readers over and over: the snapshot collector
        // keeps only two episodes, the history keeps everything.
        for round in 0..50u64 {
            for (i, reader) in [D1, D2, D3].into_iter().enumerate() {
                let s = round * 6 + i as u64 * 2;
                h.ingest_second(s, &[(O, reader)]);
                d.ingest_second(s, &[(O, reader)]);
                h.ingest_second(s + 1, &[]);
                d.ingest_second(s + 1, &[]);
            }
        }
        let snapshot_len = d.aggregated(O).unwrap().entries.len();
        assert!(snapshot_len <= 8, "snapshot retained {snapshot_len}");
        assert!(h.total_entries() >= 290, "history: {}", h.total_entries());
        // And at any past instant the view's retention is two episodes.
        let v = h.view_at(100);
        let agg = ReadingStore::aggregated(&v, O).unwrap();
        assert!(agg.entries.len() <= 8);
    }
}
