//! Raw RFID readings.

use crate::{ObjectId, ReaderId};
use serde::{Deserialize, Serialize};

/// One raw sample: reader `reader` saw tag `object` at time `time`
/// (seconds since simulation start; fractional — readers sample tens of
/// times per second, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawReading {
    /// Detection time in seconds (fractional).
    pub time: f64,
    /// The detected tag / object.
    pub object: ObjectId,
    /// The detecting reader.
    pub reader: ReaderId,
}

impl RawReading {
    /// The whole second this sample falls into (aggregation bucket).
    #[inline]
    pub fn second(&self) -> u64 {
        self.time.max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_buckets() {
        let r = RawReading {
            time: 3.94,
            object: ObjectId::new(1),
            reader: ReaderId::new(2),
        };
        assert_eq!(r.second(), 3);
        let r0 = RawReading { time: -0.5, ..r };
        assert_eq!(r0.second(), 0);
    }
}
