//! Reader deployment along hallway centerlines.

use crate::{Reader, ReaderId};
use rand::{RngExt, SeedableRng};
use ripq_floorplan::FloorPlan;
use ripq_graph::WalkingGraph;
use serde::{Deserialize, Serialize};

/// How to place readers on the hallway network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeploymentStrategy {
    /// Uniform spacing along the concatenated centerlines (the paper's
    /// setup, §5).
    Uniform,
    /// At door positions (projected onto the centerline), preferring doors
    /// far from already-placed readers — maximizes room-entry visibility.
    AtDoors,
    /// Random centerline positions (seeded), rejecting candidates closer
    /// than one activation diameter to an existing reader when possible.
    Random {
        /// RNG seed for reproducible layouts.
        seed: u64,
    },
}

/// Deploys `count` readers per `strategy`.
pub fn deploy(
    plan: &FloorPlan,
    graph: &WalkingGraph,
    strategy: DeploymentStrategy,
    count: u32,
    activation_range: f64,
) -> Vec<Reader> {
    match strategy {
        DeploymentStrategy::Uniform => deploy_uniform(plan, graph, count, activation_range),
        DeploymentStrategy::AtDoors => deploy_at_doors(plan, graph, count, activation_range),
        DeploymentStrategy::Random { seed } => {
            deploy_random(plan, graph, count, activation_range, seed)
        }
    }
}

/// Places readers at door positions (projected onto the hallway
/// centerline), greedily picking the door farthest from every reader
/// placed so far (farthest-point heuristic). Falls back to uniform
/// placement when the plan has fewer doors than `count`.
pub fn deploy_at_doors(
    plan: &FloorPlan,
    graph: &WalkingGraph,
    count: u32,
    activation_range: f64,
) -> Vec<Reader> {
    assert!(count > 0, "at least one reader");
    let mut candidates: Vec<ripq_geom::Point2> = plan
        .doors()
        .iter()
        .map(|d| {
            plan.hallway(d.hallway())
                .project_to_centerline(d.position())
        })
        .collect();
    // Facing rooms share a portal: deduplicate positions.
    candidates.sort_by(|a, b| {
        (a.x, a.y)
            .partial_cmp(&(b.x, b.y))
            .expect("finite coordinates")
    });
    candidates.dedup_by(|a, b| a.approx_eq(*b));
    if (candidates.len() as u32) < count {
        return deploy_uniform(plan, graph, count, activation_range);
    }
    let mut chosen: Vec<ripq_geom::Point2> = vec![candidates[0]];
    while (chosen.len() as u32) < count {
        let next = candidates
            .iter()
            .max_by(|a, b| {
                let da = chosen
                    .iter()
                    .map(|c| c.distance(**a))
                    .fold(f64::INFINITY, f64::min);
                let db = chosen
                    .iter()
                    .map(|c| c.distance(**b))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("non-empty candidates");
        chosen.push(*next);
    }
    chosen
        .into_iter()
        .enumerate()
        .map(|(i, position)| {
            Reader::new(
                ReaderId::new(i as u32),
                position,
                graph.project(position),
                activation_range,
            )
        })
        .collect()
}

/// Places readers at seeded-random centerline positions, rejecting (up to
/// a retry budget) candidates within one activation diameter of an
/// existing reader.
pub fn deploy_random(
    plan: &FloorPlan,
    graph: &WalkingGraph,
    count: u32,
    activation_range: f64,
    seed: u64,
) -> Vec<Reader> {
    assert!(count > 0, "at least one reader");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let total = plan.total_centerline_length();
    let point_at = |target: f64| {
        let mut walked = 0.0;
        for hall in plan.hallways() {
            let line = hall.centerline();
            if target <= walked + line.length() {
                return line.point_at(target - walked);
            }
            walked += line.length();
        }
        plan.hallways()
            .last()
            .expect("validated plan")
            .centerline()
            .b
    };
    let mut positions: Vec<ripq_geom::Point2> = Vec::with_capacity(count as usize);
    while (positions.len() as u32) < count {
        let mut placed = false;
        for _ in 0..64 {
            let cand = point_at(rng.random::<f64>() * total);
            let ok = positions
                .iter()
                .all(|p| p.distance(cand) >= 2.0 * activation_range);
            if ok {
                positions.push(cand);
                placed = true;
                break;
            }
        }
        if !placed {
            // Give up on separation for the stragglers.
            positions.push(point_at(rng.random::<f64>() * total));
        }
    }
    positions
        .into_iter()
        .enumerate()
        .map(|(i, position)| {
            Reader::new(
                ReaderId::new(i as u32),
                position,
                graph.project(position),
                activation_range,
            )
        })
        .collect()
}

/// Deploys `count` readers with uniform spacing along the concatenated
/// hallway centerlines of `plan` — the paper's setup: "a total of 19 RFID
/// readers are deployed on hallways with uniform distance to each other"
/// (§5).
///
/// Readers are placed at the midpoints of `count` equal slices of the total
/// centerline length, so the spacing between neighbors on the same hallway
/// equals `total_length / count` and no reader sits exactly on a hallway
/// end.
pub fn deploy_uniform(
    plan: &FloorPlan,
    graph: &WalkingGraph,
    count: u32,
    activation_range: f64,
) -> Vec<Reader> {
    assert!(count > 0, "at least one reader");
    assert!(activation_range > 0.0, "positive activation range");
    let total: f64 = plan.total_centerline_length();
    let step = total / count as f64;

    let mut readers = Vec::with_capacity(count as usize);
    let mut walked = 0.0; // length of fully consumed hallways
    let mut next_target = step * 0.5;
    let mut placed = 0u32;

    for hall in plan.hallways() {
        let line = hall.centerline();
        let len = line.length();
        while placed < count && next_target <= walked + len {
            let local = next_target - walked;
            let position = line.point_at(local);
            let graph_pos = graph.project(position);
            readers.push(Reader::new(
                ReaderId::new(placed),
                position,
                graph_pos,
                activation_range,
            ));
            placed += 1;
            next_target += step;
        }
        walked += len;
    }
    // Numerical tail: place any stragglers at the very end.
    while placed < count {
        let hall = plan.hallways().last().expect("validated plan");
        let line = hall.centerline();
        let position = line.point_at(line.length());
        readers.push(Reader::new(
            ReaderId::new(placed),
            position,
            graph.project(position),
            activation_range,
        ));
        placed += 1;
    }
    readers
}

/// Returns `true` when all reader activation disks are pairwise disjoint —
/// the common deployment assumption for indoor RFID tracking (§2.2: "RFID
/// readers are mostly deployed such that they have disjoint activation
/// ranges").
pub fn ranges_disjoint(readers: &[Reader]) -> bool {
    for (i, a) in readers.iter().enumerate() {
        for b in &readers[i + 1..] {
            let min_dist = a.activation_range() + b.activation_range();
            if a.position().distance(b.position()) < min_dist {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;

    fn setup() -> (FloorPlan, WalkingGraph) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        (plan, graph)
    }

    #[test]
    fn deploys_requested_count() {
        let (plan, graph) = setup();
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        assert_eq!(readers.len(), 19);
        // Dense, ordered ids.
        for (i, r) in readers.iter().enumerate() {
            assert_eq!(r.id(), ReaderId::new(i as u32));
            assert_eq!(r.activation_range(), 2.0);
        }
    }

    #[test]
    fn paper_deployment_has_disjoint_ranges() {
        let (plan, graph) = setup();
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        assert!(
            ranges_disjoint(&readers),
            "19 readers at 2 m range must be disjoint on ~230 m of hallway"
        );
    }

    #[test]
    fn very_large_ranges_overlap() {
        let (plan, graph) = setup();
        let readers = deploy_uniform(&plan, &graph, 19, 10.0);
        assert!(!ranges_disjoint(&readers));
    }

    #[test]
    fn readers_positioned_on_hallway_centerlines() {
        let (plan, graph) = setup();
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        for r in readers {
            let on_some_centerline = plan
                .hallways()
                .iter()
                .any(|h| h.centerline().distance_to_point(r.position()) < 1e-6);
            assert!(on_some_centerline, "reader {} off centerline", r.id());
            // And the graph projection is essentially at the same point.
            let gp = graph.point_of(r.graph_pos());
            assert!(gp.distance(r.position()) < 0.5);
        }
    }

    #[test]
    fn spacing_is_uniform_within_hallways() {
        let (plan, graph) = setup();
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        let total = plan.total_centerline_length();
        let step = total / 19.0;
        // Consecutive readers on the same hallway (same y for horizontal
        // halls) are `step` apart.
        let mut same_hall_gaps = Vec::new();
        for w in readers.windows(2) {
            let (a, b) = (w[0].position(), w[1].position());
            if (a.y - b.y).abs() < 1e-9 || (a.x - b.x).abs() < 1e-9 {
                same_hall_gaps.push(a.distance(b));
            }
        }
        assert!(!same_hall_gaps.is_empty());
        for gap in same_hall_gaps {
            assert!((gap - step).abs() < 1e-6, "gap {gap} != step {step}");
        }
    }

    #[test]
    fn at_doors_places_on_portals() {
        let (plan, graph) = setup();
        // The office has 15 distinct door portals (facing rooms share
        // one); 12 readers fit on genuinely distinct portals.
        let readers = deploy_at_doors(&plan, &graph, 12, 2.0);
        assert_eq!(readers.len(), 12);
        // Every reader sits at some door's centerline projection.
        for r in &readers {
            let near_door = plan.doors().iter().any(|d| {
                plan.hallway(d.hallway())
                    .project_to_centerline(d.position())
                    .distance(r.position())
                    < 1e-9
            });
            assert!(near_door, "reader {} not at a door portal", r.id());
        }
        // Distinct positions (farthest-point never repeats while doors
        // remain).
        for (i, a) in readers.iter().enumerate() {
            for b in &readers[i + 1..] {
                assert!(a.position().distance(b.position()) > 1e-9);
            }
        }
    }

    #[test]
    fn at_doors_falls_back_when_few_doors() {
        let (plan, graph) = setup();
        // 19 readers > 15 distinct portals: falls back to uniform.
        let readers = deploy_at_doors(&plan, &graph, 19, 2.0);
        assert_eq!(readers.len(), 19);
    }

    #[test]
    fn random_deployment_is_seeded_and_separated() {
        let (plan, graph) = setup();
        let a = deploy_random(&plan, &graph, 15, 2.0, 99);
        let b = deploy_random(&plan, &graph, 15, 2.0, 99);
        let c = deploy_random(&plan, &graph, 15, 2.0, 100);
        assert_eq!(a.len(), 15);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.position(), y.position(), "same seed, same layout");
        }
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.position() != y.position()),
            "different seeds differ"
        );
        // Positions on centerlines.
        for r in &a {
            let on_line = plan
                .hallways()
                .iter()
                .any(|h| h.centerline().distance_to_point(r.position()) < 1e-6);
            assert!(on_line);
        }
    }

    #[test]
    fn strategy_dispatch() {
        let (plan, graph) = setup();
        let u = deploy(&plan, &graph, DeploymentStrategy::Uniform, 5, 2.0);
        let d = deploy(&plan, &graph, DeploymentStrategy::AtDoors, 5, 2.0);
        let r = deploy(
            &plan,
            &graph,
            DeploymentStrategy::Random { seed: 1 },
            5,
            2.0,
        );
        assert_eq!(u.len(), 5);
        assert_eq!(d.len(), 5);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn single_reader_placed_mid_building() {
        let (plan, graph) = setup();
        let readers = deploy_uniform(&plan, &graph, 1, 2.0);
        assert_eq!(readers.len(), 1);
        let b = plan.bounds();
        assert!(b.contains(readers[0].position()));
    }
}
