//! Identity of tracked objects (RFID-tagged people).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a tracked object — one RFID tag, carried by one person.
///
/// The paper writes `oᵢ` for "the object with ID i" (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(u32);

impl ObjectId {
    /// Wraps a raw dense index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        ObjectId(raw)
    }

    /// The raw dense index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The raw index as `usize`, for direct `Vec` indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(ObjectId::new(7).to_string(), "o7");
        assert!(ObjectId::new(1) < ObjectId::new(2));
        assert_eq!(ObjectId::new(3).index(), 3);
    }
}
