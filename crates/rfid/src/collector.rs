//! The event-driven raw data collector (§4.1).
//!
//! Responsibilities, straight from the paper:
//!
//! * aggregate tens of raw samples per second into "more concise entries
//!   with a time unit of one second" — which "greatly reduce[s] the
//!   detecting errors of false negatives";
//! * define ENTER/LEAVE events per (object, reader) and store readings only
//!   "during the most recent ENTER, LEAVE, ENTER events", i.e. readings of
//!   up to the two most recent detection episodes per object, removing
//!   earlier history.

use crate::{ObjectId, RawReading, ReaderId};
use ripq_obs::{Counter, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Kind of a detection-range event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// The object entered a reader's detection range.
    Enter,
    /// The object left a reader's detection range.
    Leave,
}

/// An ENTER or LEAVE event for one object at one reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RfidEvent {
    /// What happened.
    pub kind: EventKind,
    /// The reader whose range was entered/left.
    pub reader: ReaderId,
    /// The second it happened (for LEAVE: the first second *without* a
    /// detection).
    pub second: u64,
}

/// One maximal run of consecutive per-second detections by a single reader.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Episode {
    reader: ReaderId,
    first_second: u64,
    last_second: u64,
}

/// Per-object collector state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ObjectState {
    /// Second of `entries[0]`.
    start_second: u64,
    /// One aggregated entry per second from `start_second`; `None` = the
    /// object was not detected that second.
    entries: Vec<Option<ReaderId>>,
    /// Up to the two most recent episodes, oldest first.
    episodes: Vec<Episode>,
    /// Second of the most recent detection.
    last_detection: u64,
    /// Recent ENTER/LEAVE events (bounded).
    events: Vec<RfidEvent>,
}

/// Read-only view of an object's retained aggregated readings.
#[derive(Debug, Clone, Copy)]
pub struct AggregatedReadings<'a> {
    /// Second of the first retained entry (`t0` in Algorithm 2).
    pub start_second: u64,
    /// One entry per second starting at `start_second`.
    pub entries: &'a [Option<ReaderId>],
}

impl AggregatedReadings<'_> {
    /// The aggregated entry for an absolute second, or `None` when out of
    /// the retained window.
    pub fn entry_at(&self, second: u64) -> Option<Option<ReaderId>> {
        let idx = second.checked_sub(self.start_second)? as usize;
        self.entries.get(idx).copied()
    }

    /// Second of the last retained entry.
    pub fn end_second(&self) -> u64 {
        self.start_second + self.entries.len().saturating_sub(1) as u64
    }
}

/// Resolved metric handles for the collector stage (`collector.*`
/// counters). All default to no-ops until a recorder is attached.
#[derive(Debug, Clone, Default)]
struct CollectorMetrics {
    /// Aggregated per-second entries appended (incl. backfilled silence).
    entries: Counter,
    /// Entries that carried a detection.
    detections: Counter,
    /// ENTER/LEAVE events emitted.
    events: Counter,
    /// Raw sample-level readings ingested.
    raw_samples: Counter,
    /// Batches dropped for arriving older than the newest second.
    stale_batches: Counter,
    /// Distinct objects first registered.
    objects_seen: Counter,
}

/// The event-driven raw data collector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataCollector {
    objects: HashMap<ObjectId, ObjectState>,
    #[serde(skip)]
    metrics: CollectorMetrics,
    current_second: Option<u64>,
    /// Re-detections by the same reader within this many seconds continue
    /// the same episode (tolerates residual aggregation misses).
    gap_tolerance: u64,
    /// Stop appending empty entries after this many seconds without any
    /// detection (the particle filter never looks past 60 s of silence —
    /// Algorithm 2 line 6).
    idle_cutoff: u64,
    /// Max ENTER/LEAVE events kept per object.
    max_events: usize,
}

impl Default for DataCollector {
    fn default() -> Self {
        DataCollector {
            objects: HashMap::new(),
            metrics: CollectorMetrics::default(),
            current_second: None,
            gap_tolerance: 2,
            idle_cutoff: 90,
            max_events: 32,
        }
    }
}

impl DataCollector {
    /// Creates a collector with default policies.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an observability recorder; `collector.*` counters are
    /// recorded from now on. A disabled recorder detaches (all handles
    /// become no-ops again).
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.metrics = CollectorMetrics {
            entries: recorder.counter("collector.entries_aggregated"),
            detections: recorder.counter("collector.detections"),
            events: recorder.counter("collector.events_emitted"),
            raw_samples: recorder.counter("collector.raw_samples"),
            stale_batches: recorder.counter("collector.stale_batches_dropped"),
            objects_seen: recorder.counter("collector.objects_seen"),
        };
    }

    /// Ingests all raw readings of one second (any object mix, unordered
    /// within the second). Seconds must be fed in non-decreasing order;
    /// skipped seconds are treated as silent.
    pub fn ingest_raw_second(&mut self, second: u64, raw: &[RawReading]) {
        self.metrics.raw_samples.add(raw.len() as u64);
        // Per-second aggregation: object → detecting reader (most samples
        // wins; with disjoint ranges there is only one candidate).
        let mut counts: HashMap<(ObjectId, ReaderId), u32> = HashMap::new();
        for r in raw {
            debug_assert_eq!(r.second(), second, "reading outside its second");
            *counts.entry((r.object, r.reader)).or_insert(0) += 1;
        }
        let mut detected: HashMap<ObjectId, (ReaderId, u32)> = HashMap::new();
        for ((obj, reader), n) in counts {
            detected
                .entry(obj)
                .and_modify(|e| {
                    if n > e.1 {
                        *e = (reader, n);
                    }
                })
                .or_insert((reader, n));
        }
        let pairs: Vec<(ObjectId, ReaderId)> =
            detected.into_iter().map(|(o, (r, _))| (o, r)).collect();
        self.ingest_second(second, &pairs);
    }

    /// Ingests pre-aggregated per-second detections: at most one reader per
    /// object for this second.
    ///
    /// Seconds must be fed in non-decreasing order; batches older than the
    /// newest second already ingested are dropped (late arrivals cannot be
    /// merged into the aggregated timeline retroactively).
    pub fn ingest_second(&mut self, second: u64, detections: &[(ObjectId, ReaderId)]) {
        if let Some(cur) = self.current_second {
            if second < cur {
                self.metrics.stale_batches.inc();
                return;
            }
        }
        self.current_second = Some(second);

        let mut det: HashMap<ObjectId, ReaderId> = HashMap::new();
        for &(o, r) in detections {
            det.insert(o, r);
        }

        // Existing objects: append this second's entry (detected or None).
        let ids: Vec<ObjectId> = self.objects.keys().copied().collect();
        for id in ids {
            let reading = det.remove(&id);
            self.append_entry(id, second, reading);
        }
        // Newly seen objects.
        for (id, reader) in det {
            self.metrics.objects_seen.inc();
            self.objects.insert(
                id,
                ObjectState {
                    start_second: second,
                    entries: Vec::new(),
                    episodes: Vec::new(),
                    last_detection: second,
                    events: Vec::new(),
                },
            );
            self.append_entry(id, second, Some(reader));
        }
    }

    fn append_entry(&mut self, id: ObjectId, second: u64, reading: Option<ReaderId>) {
        let gap_tolerance = self.gap_tolerance;
        let idle_cutoff = self.idle_cutoff;
        let max_events = self.max_events;
        let st = self.objects.get_mut(&id).expect("caller ensures presence");

        // Idle cutoff: don't grow the entry vector unboundedly for silent
        // objects.
        if reading.is_none() && second.saturating_sub(st.last_detection) > idle_cutoff {
            return;
        }

        // Backfill skipped seconds with None.
        let expected = st.start_second + st.entries.len() as u64;
        for _ in expected..second {
            st.entries.push(None);
        }
        st.entries.push(reading);
        self.metrics
            .entries
            .add(1 + second.saturating_sub(expected));
        if reading.is_some() {
            self.metrics.detections.inc();
        }

        if let Some(reader) = reading {
            st.last_detection = second;
            let same_episode = st
                .episodes
                .last()
                .is_some_and(|e| e.reader == reader && second - e.last_second <= gap_tolerance + 1);
            if same_episode {
                st.episodes.last_mut().expect("checked").last_second = second;
            } else {
                // LEAVE of the previous episode (if it hadn't been closed).
                if let Some(prev) = st.episodes.last() {
                    if prev.last_second < second {
                        let ev = RfidEvent {
                            kind: EventKind::Leave,
                            reader: prev.reader,
                            second: prev.last_second + 1,
                        };
                        if st.events.last() != Some(&ev) {
                            push_event(&mut st.events, ev, max_events, &self.metrics.events);
                        }
                    }
                }
                st.episodes.push(Episode {
                    reader,
                    first_second: second,
                    last_second: second,
                });
                push_event(
                    &mut st.events,
                    RfidEvent {
                        kind: EventKind::Enter,
                        reader,
                        second,
                    },
                    max_events,
                    &self.metrics.events,
                );
                // Retention: keep only the two most recent episodes and
                // drop entries older than the older episode's start.
                if st.episodes.len() > 2 {
                    st.episodes.remove(0);
                    let keep_from = st.episodes[0].first_second;
                    let drop = (keep_from - st.start_second) as usize;
                    st.entries.drain(..drop);
                    st.start_second = keep_from;
                }
            }
        } else {
            // First silent second after detections = LEAVE event.
            if let Some(ep) = st.episodes.last() {
                if ep.last_second + 1 == second {
                    push_event(
                        &mut st.events,
                        RfidEvent {
                            kind: EventKind::Leave,
                            reader: ep.reader,
                            second,
                        },
                        max_events,
                        &self.metrics.events,
                    );
                }
            }
        }
    }

    /// The last second fed to the collector.
    pub fn current_second(&self) -> Option<u64> {
        self.current_second
    }

    /// Objects the collector has ever detected.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys().copied()
    }

    /// The retained aggregated readings of an object.
    pub fn aggregated(&self, o: ObjectId) -> Option<AggregatedReadings<'_>> {
        self.objects.get(&o).map(|st| AggregatedReadings {
            start_second: st.start_second,
            entries: &st.entries,
        })
    }

    /// The most recent detecting reader (`d` in §4.3) and the second it
    /// last detected the object (`t_last`).
    pub fn last_detection(&self, o: ObjectId) -> Option<(ReaderId, u64)> {
        let st = self.objects.get(&o)?;
        st.episodes.last().map(|e| (e.reader, e.last_second))
    }

    /// Identity of the most recent detection episode: `(reader,
    /// first_second, last_second)`. The pair `(reader, first_second)`
    /// uniquely identifies an episode, which is exactly the invalidation
    /// granularity the particle cache needs (§4.5: cached particles are
    /// discarded "every time oᵢ is detected by a new device").
    pub fn last_episode(&self, o: ObjectId) -> Option<(ReaderId, u64, u64)> {
        let st = self.objects.get(&o)?;
        st.episodes
            .last()
            .map(|e| (e.reader, e.first_second, e.last_second))
    }

    /// The second most recent and most recent detecting devices
    /// (`dᵢ, dⱼ` of Algorithm 2; `dⱼ` is `None` while only one episode
    /// exists).
    pub fn last_two_devices(&self, o: ObjectId) -> Option<(ReaderId, Option<ReaderId>)> {
        let st = self.objects.get(&o)?;
        match st.episodes.as_slice() {
            [] => None,
            [only] => Some((only.reader, None)),
            [.., prev, last] => Some((prev.reader, Some(last.reader))),
        }
    }

    /// Recent ENTER/LEAVE events of an object (bounded, oldest first).
    pub fn events(&self, o: ObjectId) -> &[RfidEvent] {
        self.objects.get(&o).map_or(&[], |st| st.events.as_slice())
    }

    /// Drops an object's state entirely (e.g. when it exits the building).
    pub fn forget(&mut self, o: ObjectId) {
        self.objects.remove(&o);
    }
}

fn push_event(events: &mut Vec<RfidEvent>, ev: RfidEvent, cap: usize, emitted: &Counter) {
    events.push(ev);
    emitted.inc();
    if events.len() > cap {
        let excess = events.len() - cap;
        events.drain(..excess);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const O: ObjectId = ObjectId::new(0);
    const D1: ReaderId = ReaderId::new(1);
    const D2: ReaderId = ReaderId::new(2);
    const D3: ReaderId = ReaderId::new(3);

    fn feed(collector: &mut DataCollector, plan: &[(u64, Option<ReaderId>)]) {
        for &(sec, reading) in plan {
            match reading {
                Some(r) => collector.ingest_second(sec, &[(O, r)]),
                None => collector.ingest_second(sec, &[]),
            }
        }
    }

    #[test]
    fn single_episode_aggregation() {
        let mut c = DataCollector::new();
        feed(
            &mut c,
            &[(0, Some(D1)), (1, Some(D1)), (2, None), (3, None)],
        );
        let agg = c.aggregated(O).unwrap();
        assert_eq!(agg.start_second, 0);
        assert_eq!(agg.entries, &[Some(D1), Some(D1), None, None]);
        assert_eq!(c.last_detection(O), Some((D1, 1)));
        assert_eq!(c.last_two_devices(O), Some((D1, None)));
    }

    #[test]
    fn two_episodes_retained() {
        let mut c = DataCollector::new();
        feed(
            &mut c,
            &[
                (0, Some(D1)),
                (1, Some(D1)),
                (2, None),
                (3, None),
                (4, Some(D2)),
                (5, Some(D2)),
            ],
        );
        let agg = c.aggregated(O).unwrap();
        assert_eq!(agg.start_second, 0, "both episodes kept");
        assert_eq!(c.last_two_devices(O), Some((D1, Some(D2))));
        assert_eq!(c.last_detection(O), Some((D2, 5)));
    }

    #[test]
    fn third_device_evicts_first() {
        let mut c = DataCollector::new();
        feed(
            &mut c,
            &[
                (0, Some(D1)),
                (1, None),
                (2, Some(D2)),
                (3, None),
                (4, Some(D3)),
            ],
        );
        let agg = c.aggregated(O).unwrap();
        // Entries before D2's episode (second 2) are dropped.
        assert_eq!(agg.start_second, 2);
        assert_eq!(agg.entries, &[Some(D2), None, Some(D3)]);
        assert_eq!(c.last_two_devices(O), Some((D2, Some(D3))));
    }

    #[test]
    fn enter_leave_events() {
        let mut c = DataCollector::new();
        feed(
            &mut c,
            &[(0, Some(D1)), (1, Some(D1)), (2, None), (3, Some(D2))],
        );
        let ev = c.events(O);
        assert_eq!(
            ev,
            &[
                RfidEvent {
                    kind: EventKind::Enter,
                    reader: D1,
                    second: 0
                },
                RfidEvent {
                    kind: EventKind::Leave,
                    reader: D1,
                    second: 2
                },
                RfidEvent {
                    kind: EventKind::Enter,
                    reader: D2,
                    second: 3
                },
            ]
        );
    }

    #[test]
    fn gap_tolerance_merges_same_reader_episodes() {
        let mut c = DataCollector::new();
        // One missed second inside D1 coverage: still one episode.
        feed(
            &mut c,
            &[(0, Some(D1)), (1, None), (2, Some(D1)), (3, Some(D1))],
        );
        assert_eq!(c.last_two_devices(O), Some((D1, None)));
        // Events: a LEAVE at 1 was recorded followed by no new ENTER,
        // because the episode continued.
        let enters = c
            .events(O)
            .iter()
            .filter(|e| e.kind == EventKind::Enter)
            .count();
        assert_eq!(enters, 1);
    }

    #[test]
    fn long_gap_same_reader_is_new_episode() {
        let mut c = DataCollector::new();
        feed(
            &mut c,
            &[
                (0, Some(D1)),
                (1, None),
                (2, None),
                (3, None),
                (4, None),
                (5, Some(D1)),
            ],
        );
        // Re-detection after > gap_tolerance: treated as ENTER,LEAVE,ENTER
        // with the same device, so two episodes of D1 are retained.
        assert_eq!(c.last_two_devices(O), Some((D1, Some(D1))));
    }

    #[test]
    fn idle_cutoff_bounds_entry_growth() {
        let mut c = DataCollector::new();
        c.ingest_second(0, &[(O, D1)]);
        for s in 1..500 {
            c.ingest_second(s, &[]);
        }
        let agg = c.aggregated(O).unwrap();
        assert!(
            agg.entries.len() <= 92,
            "entries bounded by idle cutoff, got {}",
            agg.entries.len()
        );
        // The collector still knows the current second.
        assert_eq!(c.current_second(), Some(499));
    }

    #[test]
    fn raw_ingestion_aggregates_samples() {
        let mut c = DataCollector::new();
        let raw: Vec<RawReading> = (0..8)
            .map(|i| RawReading {
                time: 5.0 + i as f64 / 10.0,
                object: O,
                reader: D1,
            })
            .collect();
        c.ingest_raw_second(5, &raw);
        let agg = c.aggregated(O).unwrap();
        assert_eq!(agg.start_second, 5);
        assert_eq!(agg.entries, &[Some(D1)]);
    }

    #[test]
    fn raw_ingestion_majority_reader_wins() {
        let mut c = DataCollector::new();
        let mut raw = Vec::new();
        for i in 0..3 {
            raw.push(RawReading {
                time: 1.0 + i as f64 / 10.0,
                object: O,
                reader: D1,
            });
        }
        for i in 3..10 {
            raw.push(RawReading {
                time: 1.0 + i as f64 / 10.0,
                object: O,
                reader: D2,
            });
        }
        c.ingest_raw_second(1, &raw);
        assert_eq!(c.last_detection(O), Some((D2, 1)));
    }

    #[test]
    fn entry_at_lookup() {
        let mut c = DataCollector::new();
        feed(&mut c, &[(10, Some(D1)), (11, None), (12, Some(D2))]);
        let agg = c.aggregated(O).unwrap();
        assert_eq!(agg.entry_at(10), Some(Some(D1)));
        assert_eq!(agg.entry_at(11), Some(None));
        assert_eq!(agg.entry_at(12), Some(Some(D2)));
        assert_eq!(agg.entry_at(9), None);
        assert_eq!(agg.entry_at(13), None);
        assert_eq!(agg.end_second(), 12);
    }

    #[test]
    fn multiple_objects_tracked_independently() {
        let mut c = DataCollector::new();
        let o2 = ObjectId::new(9);
        c.ingest_second(0, &[(O, D1), (o2, D2)]);
        c.ingest_second(1, &[(o2, D2)]);
        assert_eq!(c.last_detection(O), Some((D1, 0)));
        assert_eq!(c.last_detection(o2), Some((D2, 1)));
        assert_eq!(c.objects().count(), 2);
        c.forget(O);
        assert_eq!(c.objects().count(), 1);
    }

    #[test]
    fn stale_batches_are_dropped() {
        let mut c = DataCollector::new();
        c.ingest_second(5, &[(O, D1)]);
        // A late batch for second 3 must not corrupt the timeline.
        c.ingest_second(3, &[(O, D2)]);
        assert_eq!(c.current_second(), Some(5));
        assert_eq!(c.last_detection(O), Some((D1, 5)));
        let agg = c.aggregated(O).unwrap();
        assert_eq!(agg.entries, &[Some(D1)]);
    }

    #[test]
    fn unknown_object_queries_return_none() {
        let c = DataCollector::new();
        assert!(c.aggregated(O).is_none());
        assert!(c.last_detection(O).is_none());
        assert!(c.last_two_devices(O).is_none());
        assert!(c.events(O).is_empty());
    }
}
