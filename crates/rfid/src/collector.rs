//! The event-driven raw data collector (§4.1).
//!
//! Responsibilities, straight from the paper:
//!
//! * aggregate tens of raw samples per second into "more concise entries
//!   with a time unit of one second" — which "greatly reduce[s] the
//!   detecting errors of false negatives";
//! * define ENTER/LEAVE events per (object, reader) and store readings only
//!   "during the most recent ENTER, LEAVE, ENTER events", i.e. readings of
//!   up to the two most recent detection episodes per object, removing
//!   earlier history.

use crate::{ObjectId, RawReading, ReaderId};
use ripq_obs::{Counter, Recorder};
use ripq_persist::{ByteReader, ByteWriter, PersistError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Kind of a detection-range event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// The object entered a reader's detection range.
    Enter,
    /// The object left a reader's detection range.
    Leave,
}

/// An ENTER or LEAVE event for one object at one reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RfidEvent {
    /// What happened.
    pub kind: EventKind,
    /// The reader whose range was entered/left.
    pub reader: ReaderId,
    /// The second it happened (for LEAVE: the first second *without* a
    /// detection).
    pub second: u64,
}

/// A reader downtime window the collector has been told about (a known
/// failure or maintenance window). During it, silence from that reader is
/// expected — not evidence the object left its range. Windows of one
/// reader are assumed disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct OutageWindow {
    reader: ReaderId,
    from: u64,
    until: u64,
}

/// Seconds `s` with `after < s < before` during which `reader` was down.
fn downtime_between(outages: &[OutageWindow], reader: ReaderId, after: u64, before: u64) -> u64 {
    if before <= after + 1 {
        return 0;
    }
    let (lo, hi) = (after + 1, before - 1);
    outages
        .iter()
        .filter(|o| o.reader == reader)
        .map(|o| {
            let a = o.from.max(lo);
            let b = o.until.min(hi);
            if b >= a {
                b - a + 1
            } else {
                0
            }
        })
        .sum()
}

/// One maximal run of consecutive per-second detections by a single reader.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Episode {
    reader: ReaderId,
    first_second: u64,
    last_second: u64,
}

/// Per-object collector state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ObjectState {
    /// Second of `entries[0]`.
    start_second: u64,
    /// One aggregated entry per second from `start_second`; `None` = the
    /// object was not detected that second.
    entries: Vec<Option<ReaderId>>,
    /// Up to the two most recent episodes, oldest first.
    episodes: Vec<Episode>,
    /// Second of the most recent detection.
    last_detection: u64,
    /// Recent ENTER/LEAVE events (bounded).
    events: Vec<RfidEvent>,
}

/// Read-only view of an object's retained aggregated readings.
#[derive(Debug, Clone, Copy)]
pub struct AggregatedReadings<'a> {
    /// Second of the first retained entry (`t0` in Algorithm 2).
    pub start_second: u64,
    /// One entry per second starting at `start_second`.
    pub entries: &'a [Option<ReaderId>],
}

impl AggregatedReadings<'_> {
    /// The aggregated entry for an absolute second, or `None` when out of
    /// the retained window.
    pub fn entry_at(&self, second: u64) -> Option<Option<ReaderId>> {
        let idx = second.checked_sub(self.start_second)? as usize;
        self.entries.get(idx).copied()
    }

    /// Second of the last retained entry.
    pub fn end_second(&self) -> u64 {
        self.start_second + self.entries.len().saturating_sub(1) as u64
    }
}

/// Resolved metric handles for the collector stage (`collector.*`
/// counters). All default to no-ops until a recorder is attached.
#[derive(Debug, Clone, Default)]
struct CollectorMetrics {
    /// Aggregated per-second entries appended (incl. backfilled silence).
    entries: Counter,
    /// Entries that carried a detection.
    detections: Counter,
    /// ENTER/LEAVE events emitted.
    events: Counter,
    /// Raw sample-level readings ingested.
    raw_samples: Counter,
    /// Batches dropped for arriving older than the newest second.
    stale_batches: Counter,
    /// Distinct objects first registered.
    objects_seen: Counter,
    /// Delivered readings whose logical second preceded the newest
    /// logical second already buffered (out-of-order arrivals the reorder
    /// buffer absorbed).
    reordered: Counter,
    /// Exact duplicate deliveries discarded by idempotent dedup.
    deduped: Counter,
    /// Delivered readings too old even for the reorder window (their
    /// logical second was already finalized).
    late_dropped: Counter,
    /// LEAVE emissions suppressed (or deferred) because the episode's
    /// reader was known to be down at the silent second.
    outage_suppressed: Counter,
}

/// The event-driven raw data collector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataCollector {
    objects: HashMap<ObjectId, ObjectState>,
    #[serde(skip)]
    metrics: CollectorMetrics,
    current_second: Option<u64>,
    /// Re-detections by the same reader within this many seconds continue
    /// the same episode (tolerates residual aggregation misses).
    gap_tolerance: u64,
    /// Stop appending empty entries after this many seconds without any
    /// detection (the particle filter never looks past 60 s of silence —
    /// Algorithm 2 line 6).
    idle_cutoff: u64,
    /// Max ENTER/LEAVE events kept per object.
    max_events: usize,
    /// Out-of-order tolerance of [`DataCollector::ingest_delivery`]:
    /// readings may arrive up to this many seconds after their logical
    /// second and still be merged into the aggregated timeline. `0`
    /// keeps the strict in-order contract.
    reorder_window: u64,
    /// Readings buffered by logical second, awaiting finalization by
    /// [`DataCollector::flush_through`].
    pending: BTreeMap<u64, Vec<(ObjectId, ReaderId)>>,
    /// Newest logical second seen by `ingest_delivery` (for the
    /// `reordered` counter).
    max_logical_seen: Option<u64>,
    /// Known reader downtime windows (outage-aware event emission).
    outages: Vec<OutageWindow>,
}

impl Default for DataCollector {
    fn default() -> Self {
        DataCollector {
            objects: HashMap::new(),
            metrics: CollectorMetrics::default(),
            current_second: None,
            gap_tolerance: 2,
            idle_cutoff: 90,
            max_events: 32,
            reorder_window: 0,
            pending: BTreeMap::new(),
            max_logical_seen: None,
            outages: Vec::new(),
        }
    }
}

impl DataCollector {
    /// Creates a collector with default policies.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an observability recorder; `collector.*` counters are
    /// recorded from now on. A disabled recorder detaches (all handles
    /// become no-ops again).
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.metrics = CollectorMetrics {
            entries: recorder.counter("collector.entries_aggregated"),
            detections: recorder.counter("collector.detections"),
            events: recorder.counter("collector.events_emitted"),
            raw_samples: recorder.counter("collector.raw_samples"),
            stale_batches: recorder.counter("collector.stale_batches_dropped"),
            objects_seen: recorder.counter("collector.objects_seen"),
            reordered: recorder.counter("collector.reordered"),
            deduped: recorder.counter("collector.deduped"),
            late_dropped: recorder.counter("collector.late_dropped"),
            outage_suppressed: recorder.counter("collector.outage_suppressed_leaves"),
        };
    }

    /// Sets the out-of-order tolerance of
    /// [`DataCollector::ingest_delivery`] (seconds). With a window of
    /// `W`, a reading delivered at second `d` with logical second
    /// `t ≥ d − W` is merged back into its proper place; anything older
    /// is counted as `collector.late_dropped` and discarded.
    pub fn set_reorder_window(&mut self, seconds: u64) {
        self.reorder_window = seconds;
    }

    /// The out-of-order tolerance in force.
    pub fn reorder_window(&self) -> u64 {
        self.reorder_window
    }

    /// Registers a known reader downtime window `[from, until]`
    /// (inclusive). During it, silence from `reader` no longer emits a
    /// LEAVE event (the LEAVE is deferred to the first silent second
    /// after the reader revives), and a same-reader re-detection after
    /// the outage continues its episode instead of splitting a new one.
    pub fn note_outage(&mut self, reader: ReaderId, from: u64, until: u64) {
        self.outages.push(OutageWindow {
            reader,
            from,
            until,
        });
    }

    /// Ingests delivery-tagged readings: each `(logical_second, object,
    /// reader)` triple was *generated* at `logical_second` but only
    /// *arrived* at `delivery_second`. Readings are buffered per logical
    /// second — duplicates of an already-buffered `(object, reader)` pair
    /// are discarded idempotently — and the timeline is finalized up to
    /// `delivery_second − reorder_window` on every call. Readings whose
    /// logical second was already finalized are dropped (and counted).
    pub fn ingest_delivery(
        &mut self,
        delivery_second: u64,
        readings: &[(u64, ObjectId, ReaderId)],
    ) {
        for &(logical, object, reader) in readings {
            if self.current_second.is_some_and(|cur| logical <= cur) {
                self.metrics.late_dropped.inc();
                continue;
            }
            if self.max_logical_seen.is_some_and(|m| logical < m) {
                self.metrics.reordered.inc();
            }
            self.max_logical_seen = Some(self.max_logical_seen.map_or(logical, |m| m.max(logical)));
            let bucket = self.pending.entry(logical).or_default();
            if bucket.contains(&(object, reader)) {
                self.metrics.deduped.inc();
                continue;
            }
            bucket.push((object, reader));
        }
        // Nothing is final until the delivery clock has cleared the
        // window: logical second `s` may still receive readings up to
        // delivery `s + window`, so the watermark is `delivery - window`
        // and simply doesn't exist for the first `window` seconds.
        if let Some(watermark) = delivery_second.checked_sub(self.reorder_window) {
            self.flush_through(watermark);
        }
    }

    /// Finalizes every buffered logical second up to `second`
    /// (inclusive): each one — including silent ones, which drive LEAVE
    /// emission and idle accounting — is fed to
    /// [`DataCollector::ingest_second`] in order. Call once more with the
    /// final watermark after the stream ends to drain the buffer.
    pub fn flush_through(&mut self, second: u64) {
        let start = match self.current_second {
            Some(cur) => cur + 1,
            None => match self.pending.keys().next() {
                Some(&first) => first,
                None => return,
            },
        };
        for s in start..=second {
            let batch = self.pending.remove(&s).unwrap_or_default();
            self.ingest_second(s, &batch);
        }
    }

    /// Ingests all raw readings of one second (any object mix, unordered
    /// within the second). Seconds must be fed in non-decreasing order;
    /// skipped seconds are treated as silent.
    pub fn ingest_raw_second(&mut self, second: u64, raw: &[RawReading]) {
        self.metrics.raw_samples.add(raw.len() as u64);
        // Per-second aggregation: object → detecting reader (most samples
        // wins; with disjoint ranges there is only one candidate).
        let mut counts: HashMap<(ObjectId, ReaderId), u32> = HashMap::new();
        for r in raw {
            debug_assert_eq!(r.second(), second, "reading outside its second");
            *counts.entry((r.object, r.reader)).or_insert(0) += 1;
        }
        let mut detected: HashMap<ObjectId, (ReaderId, u32)> = HashMap::new();
        for ((obj, reader), n) in counts {
            detected
                .entry(obj)
                .and_modify(|e| {
                    if n > e.1 {
                        *e = (reader, n);
                    }
                })
                .or_insert((reader, n));
        }
        let pairs: Vec<(ObjectId, ReaderId)> =
            detected.into_iter().map(|(o, (r, _))| (o, r)).collect();
        self.ingest_second(second, &pairs);
    }

    /// Ingests pre-aggregated per-second detections: at most one reader per
    /// object for this second.
    ///
    /// Seconds must be fed in non-decreasing order; batches older than the
    /// newest second already ingested are dropped (late arrivals cannot be
    /// merged into the aggregated timeline retroactively).
    pub fn ingest_second(&mut self, second: u64, detections: &[(ObjectId, ReaderId)]) {
        if let Some(cur) = self.current_second {
            if second < cur {
                self.metrics.stale_batches.inc();
                return;
            }
        }
        self.current_second = Some(second);

        let mut det: HashMap<ObjectId, ReaderId> = HashMap::new();
        for &(o, r) in detections {
            det.insert(o, r);
        }

        // Existing objects: append this second's entry (detected or None).
        let ids: Vec<ObjectId> = self.objects.keys().copied().collect();
        for id in ids {
            let reading = det.remove(&id);
            self.append_entry(id, second, reading);
        }
        // Newly seen objects.
        for (id, reader) in det {
            self.metrics.objects_seen.inc();
            self.objects.insert(
                id,
                ObjectState {
                    start_second: second,
                    entries: Vec::new(),
                    episodes: Vec::new(),
                    last_detection: second,
                    events: Vec::new(),
                },
            );
            self.append_entry(id, second, Some(reader));
        }
    }

    fn append_entry(&mut self, id: ObjectId, second: u64, reading: Option<ReaderId>) {
        let gap_tolerance = self.gap_tolerance;
        let idle_cutoff = self.idle_cutoff;
        let max_events = self.max_events;
        let st = self.objects.get_mut(&id).expect("caller ensures presence");

        // Idle cutoff: don't grow the entry vector unboundedly for silent
        // objects.
        if reading.is_none() && second.saturating_sub(st.last_detection) > idle_cutoff {
            return;
        }

        // Backfill skipped seconds with None.
        let expected = st.start_second + st.entries.len() as u64;
        for _ in expected..second {
            st.entries.push(None);
        }
        st.entries.push(reading);
        self.metrics
            .entries
            .add(1 + second.saturating_sub(expected));
        if reading.is_some() {
            self.metrics.detections.inc();
        }

        if let Some(reader) = reading {
            st.last_detection = second;
            // A same-reader re-detection continues the episode if the gap
            // fits the tolerance once that reader's known downtime is
            // excluded — an outage is not evidence the object moved.
            let same_episode = st.episodes.last().is_some_and(|e| {
                e.reader == reader
                    && second - e.last_second
                        <= gap_tolerance
                            + 1
                            + downtime_between(&self.outages, e.reader, e.last_second, second)
            });
            if same_episode {
                st.episodes.last_mut().expect("checked").last_second = second;
            } else {
                // LEAVE of the previous episode (if it hadn't been closed).
                if let Some(prev) = st.episodes.last() {
                    if prev.last_second < second {
                        // The second the LEAVE (would have) fired: the
                        // first reader-up silent second after the last
                        // detection — identical to what the silent-second
                        // path emits, so dedup-by-equality still works.
                        let ev = RfidEvent {
                            kind: EventKind::Leave,
                            reader: prev.reader,
                            second: first_up_second(&self.outages, prev.reader, prev.last_second)
                                .min(second),
                        };
                        if st.events.last() != Some(&ev) {
                            push_event(&mut st.events, ev, max_events, &self.metrics.events);
                        }
                    }
                }
                st.episodes.push(Episode {
                    reader,
                    first_second: second,
                    last_second: second,
                });
                push_event(
                    &mut st.events,
                    RfidEvent {
                        kind: EventKind::Enter,
                        reader,
                        second,
                    },
                    max_events,
                    &self.metrics.events,
                );
                // Retention: keep only the two most recent episodes and
                // drop entries older than the older episode's start.
                if st.episodes.len() > 2 {
                    st.episodes.remove(0);
                    let keep_from = st.episodes[0].first_second;
                    let drop = (keep_from - st.start_second) as usize;
                    st.entries.drain(..drop);
                    st.start_second = keep_from;
                }
            }
        } else {
            // First reader-up silent second after detections = LEAVE
            // event. While the episode's reader is known to be down the
            // silence is expected, so the LEAVE is suppressed and
            // deferred to the first silent second after the revival.
            if let Some(ep) = st.episodes.last() {
                let down_now = self
                    .outages
                    .iter()
                    .any(|o| o.reader == ep.reader && (o.from..=o.until).contains(&second));
                if down_now {
                    if ep.last_second + 1 == second {
                        self.metrics.outage_suppressed.inc();
                    }
                } else if second > ep.last_second {
                    let up_silent = (second - ep.last_second)
                        - downtime_between(&self.outages, ep.reader, ep.last_second, second + 1);
                    if up_silent == 1 {
                        push_event(
                            &mut st.events,
                            RfidEvent {
                                kind: EventKind::Leave,
                                reader: ep.reader,
                                second,
                            },
                            max_events,
                            &self.metrics.events,
                        );
                    }
                }
            }
        }
    }

    /// The last second fed to the collector.
    pub fn current_second(&self) -> Option<u64> {
        self.current_second
    }

    /// Objects the collector has ever detected.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys().copied()
    }

    /// The retained aggregated readings of an object.
    pub fn aggregated(&self, o: ObjectId) -> Option<AggregatedReadings<'_>> {
        self.objects.get(&o).map(|st| AggregatedReadings {
            start_second: st.start_second,
            entries: &st.entries,
        })
    }

    /// The most recent detecting reader (`d` in §4.3) and the second it
    /// last detected the object (`t_last`).
    pub fn last_detection(&self, o: ObjectId) -> Option<(ReaderId, u64)> {
        let st = self.objects.get(&o)?;
        st.episodes.last().map(|e| (e.reader, e.last_second))
    }

    /// Identity of the most recent detection episode: `(reader,
    /// first_second, last_second)`. The pair `(reader, first_second)`
    /// uniquely identifies an episode, which is exactly the invalidation
    /// granularity the particle cache needs (§4.5: cached particles are
    /// discarded "every time oᵢ is detected by a new device").
    pub fn last_episode(&self, o: ObjectId) -> Option<(ReaderId, u64, u64)> {
        let st = self.objects.get(&o)?;
        st.episodes
            .last()
            .map(|e| (e.reader, e.first_second, e.last_second))
    }

    /// The second most recent and most recent detecting devices
    /// (`dᵢ, dⱼ` of Algorithm 2; `dⱼ` is `None` while only one episode
    /// exists).
    pub fn last_two_devices(&self, o: ObjectId) -> Option<(ReaderId, Option<ReaderId>)> {
        let st = self.objects.get(&o)?;
        match st.episodes.as_slice() {
            [] => None,
            [only] => Some((only.reader, None)),
            [.., prev, last] => Some((prev.reader, Some(last.reader))),
        }
    }

    /// Recent ENTER/LEAVE events of an object (bounded, oldest first).
    pub fn events(&self, o: ObjectId) -> &[RfidEvent] {
        self.objects.get(&o).map_or(&[], |st| st.events.as_slice())
    }

    /// Drops an object's state entirely (e.g. when it exits the building).
    pub fn forget(&mut self, o: ObjectId) {
        self.objects.remove(&o);
    }

    /// Appends the collector's full mutable state to `w` in the canonical
    /// checkpoint encoding (objects sorted by id, pending buckets in
    /// `BTreeMap` order), so equal state always encodes to identical
    /// bytes. Metric handles are not part of the state — re-attach them
    /// with [`DataCollector::set_recorder`] after a decode.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_opt_u64(self.current_second);
        w.put_u64(self.gap_tolerance);
        w.put_u64(self.idle_cutoff);
        w.put_u64(self.max_events as u64);
        w.put_u64(self.reorder_window);
        w.put_opt_u64(self.max_logical_seen);

        let mut ids: Vec<ObjectId> = self.objects.keys().copied().collect();
        ids.sort();
        w.put_seq_len(ids.len());
        for id in ids {
            let st = &self.objects[&id];
            w.put_u32(id.raw());
            w.put_u64(st.start_second);
            w.put_seq_len(st.entries.len());
            for entry in &st.entries {
                match entry {
                    Some(r) => {
                        w.put_u8(1);
                        w.put_u32(r.raw());
                    }
                    None => w.put_u8(0),
                }
            }
            w.put_seq_len(st.episodes.len());
            for ep in &st.episodes {
                w.put_u32(ep.reader.raw());
                w.put_u64(ep.first_second);
                w.put_u64(ep.last_second);
            }
            w.put_u64(st.last_detection);
            w.put_seq_len(st.events.len());
            for ev in &st.events {
                w.put_u8(match ev.kind {
                    EventKind::Enter => 0,
                    EventKind::Leave => 1,
                });
                w.put_u32(ev.reader.raw());
                w.put_u64(ev.second);
            }
        }

        w.put_seq_len(self.pending.len());
        for (&second, bucket) in &self.pending {
            w.put_u64(second);
            w.put_seq_len(bucket.len());
            for &(object, reader) in bucket {
                w.put_u32(object.raw());
                w.put_u32(reader.raw());
            }
        }

        w.put_seq_len(self.outages.len());
        for o in &self.outages {
            w.put_u32(o.reader.raw());
            w.put_u64(o.from);
            w.put_u64(o.until);
        }
    }

    /// Rebuilds a collector from bytes written by
    /// [`DataCollector::encode_state`]. Any truncation or invalid tag is
    /// [`PersistError::Torn`]; the returned collector has detached metric
    /// handles until [`DataCollector::set_recorder`] is called.
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<DataCollector, PersistError> {
        let current_second = r.get_opt_u64()?;
        let gap_tolerance = r.get_u64()?;
        let idle_cutoff = r.get_u64()?;
        let max_events = r.get_u64()? as usize;
        let reorder_window = r.get_u64()?;
        let max_logical_seen = r.get_opt_u64()?;

        let mut objects = HashMap::new();
        let n_objects = r.get_seq_len(13)?;
        for _ in 0..n_objects {
            let id = ObjectId::new(r.get_u32()?);
            let start_second = r.get_u64()?;
            let n_entries = r.get_seq_len(1)?;
            let mut entries = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                entries.push(match r.get_u8()? {
                    0 => None,
                    1 => Some(ReaderId::new(r.get_u32()?)),
                    _ => return Err(PersistError::Torn),
                });
            }
            let n_episodes = r.get_seq_len(20)?;
            let mut episodes = Vec::with_capacity(n_episodes);
            for _ in 0..n_episodes {
                episodes.push(Episode {
                    reader: ReaderId::new(r.get_u32()?),
                    first_second: r.get_u64()?,
                    last_second: r.get_u64()?,
                });
            }
            let last_detection = r.get_u64()?;
            let n_events = r.get_seq_len(13)?;
            let mut events = Vec::with_capacity(n_events);
            for _ in 0..n_events {
                let kind = match r.get_u8()? {
                    0 => EventKind::Enter,
                    1 => EventKind::Leave,
                    _ => return Err(PersistError::Torn),
                };
                events.push(RfidEvent {
                    kind,
                    reader: ReaderId::new(r.get_u32()?),
                    second: r.get_u64()?,
                });
            }
            objects.insert(
                id,
                ObjectState {
                    start_second,
                    entries,
                    episodes,
                    last_detection,
                    events,
                },
            );
        }

        let mut pending = BTreeMap::new();
        let n_pending = r.get_seq_len(12)?;
        for _ in 0..n_pending {
            let second = r.get_u64()?;
            let n = r.get_seq_len(8)?;
            let mut bucket = Vec::with_capacity(n);
            for _ in 0..n {
                bucket.push((ObjectId::new(r.get_u32()?), ReaderId::new(r.get_u32()?)));
            }
            pending.insert(second, bucket);
        }

        let n_outages = r.get_seq_len(20)?;
        let mut outages = Vec::with_capacity(n_outages);
        for _ in 0..n_outages {
            outages.push(OutageWindow {
                reader: ReaderId::new(r.get_u32()?),
                from: r.get_u64()?,
                until: r.get_u64()?,
            });
        }

        Ok(DataCollector {
            objects,
            metrics: CollectorMetrics::default(),
            current_second,
            gap_tolerance,
            idle_cutoff,
            max_events,
            reorder_window,
            pending,
            max_logical_seen,
            outages,
        })
    }
}

/// The first second after `after` at which `reader` is not inside any
/// known outage window.
fn first_up_second(outages: &[OutageWindow], reader: ReaderId, after: u64) -> u64 {
    let mut s = after + 1;
    loop {
        match outages
            .iter()
            .find(|o| o.reader == reader && (o.from..=o.until).contains(&s))
        {
            Some(o) => s = o.until + 1,
            None => return s,
        }
    }
}

fn push_event(events: &mut Vec<RfidEvent>, ev: RfidEvent, cap: usize, emitted: &Counter) {
    events.push(ev);
    emitted.inc();
    if events.len() > cap {
        let excess = events.len() - cap;
        events.drain(..excess);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const O: ObjectId = ObjectId::new(0);
    const D1: ReaderId = ReaderId::new(1);
    const D2: ReaderId = ReaderId::new(2);
    const D3: ReaderId = ReaderId::new(3);

    fn feed(collector: &mut DataCollector, plan: &[(u64, Option<ReaderId>)]) {
        for &(sec, reading) in plan {
            match reading {
                Some(r) => collector.ingest_second(sec, &[(O, r)]),
                None => collector.ingest_second(sec, &[]),
            }
        }
    }

    #[test]
    fn single_episode_aggregation() {
        let mut c = DataCollector::new();
        feed(
            &mut c,
            &[(0, Some(D1)), (1, Some(D1)), (2, None), (3, None)],
        );
        let agg = c.aggregated(O).unwrap();
        assert_eq!(agg.start_second, 0);
        assert_eq!(agg.entries, &[Some(D1), Some(D1), None, None]);
        assert_eq!(c.last_detection(O), Some((D1, 1)));
        assert_eq!(c.last_two_devices(O), Some((D1, None)));
    }

    #[test]
    fn two_episodes_retained() {
        let mut c = DataCollector::new();
        feed(
            &mut c,
            &[
                (0, Some(D1)),
                (1, Some(D1)),
                (2, None),
                (3, None),
                (4, Some(D2)),
                (5, Some(D2)),
            ],
        );
        let agg = c.aggregated(O).unwrap();
        assert_eq!(agg.start_second, 0, "both episodes kept");
        assert_eq!(c.last_two_devices(O), Some((D1, Some(D2))));
        assert_eq!(c.last_detection(O), Some((D2, 5)));
    }

    #[test]
    fn third_device_evicts_first() {
        let mut c = DataCollector::new();
        feed(
            &mut c,
            &[
                (0, Some(D1)),
                (1, None),
                (2, Some(D2)),
                (3, None),
                (4, Some(D3)),
            ],
        );
        let agg = c.aggregated(O).unwrap();
        // Entries before D2's episode (second 2) are dropped.
        assert_eq!(agg.start_second, 2);
        assert_eq!(agg.entries, &[Some(D2), None, Some(D3)]);
        assert_eq!(c.last_two_devices(O), Some((D2, Some(D3))));
    }

    #[test]
    fn enter_leave_events() {
        let mut c = DataCollector::new();
        feed(
            &mut c,
            &[(0, Some(D1)), (1, Some(D1)), (2, None), (3, Some(D2))],
        );
        let ev = c.events(O);
        assert_eq!(
            ev,
            &[
                RfidEvent {
                    kind: EventKind::Enter,
                    reader: D1,
                    second: 0
                },
                RfidEvent {
                    kind: EventKind::Leave,
                    reader: D1,
                    second: 2
                },
                RfidEvent {
                    kind: EventKind::Enter,
                    reader: D2,
                    second: 3
                },
            ]
        );
    }

    #[test]
    fn gap_tolerance_merges_same_reader_episodes() {
        let mut c = DataCollector::new();
        // One missed second inside D1 coverage: still one episode.
        feed(
            &mut c,
            &[(0, Some(D1)), (1, None), (2, Some(D1)), (3, Some(D1))],
        );
        assert_eq!(c.last_two_devices(O), Some((D1, None)));
        // Events: a LEAVE at 1 was recorded followed by no new ENTER,
        // because the episode continued.
        let enters = c
            .events(O)
            .iter()
            .filter(|e| e.kind == EventKind::Enter)
            .count();
        assert_eq!(enters, 1);
    }

    #[test]
    fn long_gap_same_reader_is_new_episode() {
        let mut c = DataCollector::new();
        feed(
            &mut c,
            &[
                (0, Some(D1)),
                (1, None),
                (2, None),
                (3, None),
                (4, None),
                (5, Some(D1)),
            ],
        );
        // Re-detection after > gap_tolerance: treated as ENTER,LEAVE,ENTER
        // with the same device, so two episodes of D1 are retained.
        assert_eq!(c.last_two_devices(O), Some((D1, Some(D1))));
    }

    #[test]
    fn idle_cutoff_bounds_entry_growth() {
        let mut c = DataCollector::new();
        c.ingest_second(0, &[(O, D1)]);
        for s in 1..500 {
            c.ingest_second(s, &[]);
        }
        let agg = c.aggregated(O).unwrap();
        assert!(
            agg.entries.len() <= 92,
            "entries bounded by idle cutoff, got {}",
            agg.entries.len()
        );
        // The collector still knows the current second.
        assert_eq!(c.current_second(), Some(499));
    }

    #[test]
    fn raw_ingestion_aggregates_samples() {
        let mut c = DataCollector::new();
        let raw: Vec<RawReading> = (0..8)
            .map(|i| RawReading {
                time: 5.0 + i as f64 / 10.0,
                object: O,
                reader: D1,
            })
            .collect();
        c.ingest_raw_second(5, &raw);
        let agg = c.aggregated(O).unwrap();
        assert_eq!(agg.start_second, 5);
        assert_eq!(agg.entries, &[Some(D1)]);
    }

    #[test]
    fn raw_ingestion_majority_reader_wins() {
        let mut c = DataCollector::new();
        let mut raw = Vec::new();
        for i in 0..3 {
            raw.push(RawReading {
                time: 1.0 + i as f64 / 10.0,
                object: O,
                reader: D1,
            });
        }
        for i in 3..10 {
            raw.push(RawReading {
                time: 1.0 + i as f64 / 10.0,
                object: O,
                reader: D2,
            });
        }
        c.ingest_raw_second(1, &raw);
        assert_eq!(c.last_detection(O), Some((D2, 1)));
    }

    #[test]
    fn entry_at_lookup() {
        let mut c = DataCollector::new();
        feed(&mut c, &[(10, Some(D1)), (11, None), (12, Some(D2))]);
        let agg = c.aggregated(O).unwrap();
        assert_eq!(agg.entry_at(10), Some(Some(D1)));
        assert_eq!(agg.entry_at(11), Some(None));
        assert_eq!(agg.entry_at(12), Some(Some(D2)));
        assert_eq!(agg.entry_at(9), None);
        assert_eq!(agg.entry_at(13), None);
        assert_eq!(agg.end_second(), 12);
    }

    #[test]
    fn multiple_objects_tracked_independently() {
        let mut c = DataCollector::new();
        let o2 = ObjectId::new(9);
        c.ingest_second(0, &[(O, D1), (o2, D2)]);
        c.ingest_second(1, &[(o2, D2)]);
        assert_eq!(c.last_detection(O), Some((D1, 0)));
        assert_eq!(c.last_detection(o2), Some((D2, 1)));
        assert_eq!(c.objects().count(), 2);
        c.forget(O);
        assert_eq!(c.objects().count(), 1);
    }

    #[test]
    fn stale_batches_are_dropped() {
        let mut c = DataCollector::new();
        c.ingest_second(5, &[(O, D1)]);
        // A late batch for second 3 must not corrupt the timeline.
        c.ingest_second(3, &[(O, D2)]);
        assert_eq!(c.current_second(), Some(5));
        assert_eq!(c.last_detection(O), Some((D1, 5)));
        let agg = c.aggregated(O).unwrap();
        assert_eq!(agg.entries, &[Some(D1)]);
    }

    #[test]
    fn unknown_object_queries_return_none() {
        let c = DataCollector::new();
        assert!(c.aggregated(O).is_none());
        assert!(c.last_detection(O).is_none());
        assert!(c.last_two_devices(O).is_none());
        assert!(c.events(O).is_empty());
    }

    /// Clean ingestion of a per-second plan, for comparing against the
    /// delivery path.
    fn ingest_clean(plan: &[(u64, Option<ReaderId>)]) -> DataCollector {
        let mut c = DataCollector::new();
        feed(&mut c, plan);
        c
    }

    #[test]
    fn in_window_reorder_is_absorbed_exactly() {
        // Logical seconds 0..=5; reading of second 2 arrives two seconds
        // late, second 4's arrives one second late.
        let plan: &[(u64, Option<ReaderId>)] = &[
            (0, Some(D1)),
            (1, Some(D1)),
            (2, Some(D1)),
            (3, None),
            (4, Some(D2)),
            (5, Some(D2)),
        ];
        let clean = ingest_clean(plan);

        let mut c = DataCollector::new();
        c.set_reorder_window(2);
        c.ingest_delivery(0, &[(0, O, D1)]);
        c.ingest_delivery(1, &[(1, O, D1)]);
        c.ingest_delivery(2, &[]);
        c.ingest_delivery(3, &[]);
        c.ingest_delivery(4, &[(2, O, D1)]); // 2 s late
        c.ingest_delivery(5, &[(4, O, D2), (5, O, D2)]); // 1 s late + on time
        c.flush_through(5);

        let (ca, cc) = (c.aggregated(O).unwrap(), clean.aggregated(O).unwrap());
        assert_eq!(ca.start_second, cc.start_second);
        assert_eq!(ca.entries, cc.entries);
        assert_eq!(c.last_two_devices(O), clean.last_two_devices(O));
        assert_eq!(c.events(O), clean.events(O));
        assert_eq!(c.current_second(), clean.current_second());
    }

    #[test]
    fn duplicate_deliveries_are_idempotent() {
        let plan: &[(u64, Option<ReaderId>)] = &[(0, Some(D1)), (1, Some(D1)), (2, None)];
        let clean = ingest_clean(plan);

        let mut c = DataCollector::new();
        c.set_reorder_window(1);
        c.ingest_delivery(0, &[(0, O, D1), (0, O, D1)]);
        c.ingest_delivery(1, &[(1, O, D1)]);
        c.ingest_delivery(2, &[(1, O, D1)]); // duplicate, one second later
        c.flush_through(2);

        assert_eq!(
            c.aggregated(O).unwrap().entries,
            clean.aggregated(O).unwrap().entries
        );
        assert_eq!(c.events(O), clean.events(O));
    }

    #[test]
    fn beyond_window_readings_are_late_dropped() {
        let mut c = DataCollector::new();
        c.set_reorder_window(1);
        c.ingest_delivery(0, &[(0, O, D1)]);
        c.ingest_delivery(5, &[]); // finalizes through second 4
                                   // Logical second 3 was already finalized: dropped, not merged.
        c.ingest_delivery(6, &[(3, O, D2)]);
        c.flush_through(6);
        let agg = c.aggregated(O).unwrap();
        assert_eq!(agg.entry_at(3), Some(None), "late reading discarded");
        assert_eq!(c.last_detection(O), Some((D1, 0)));
    }

    #[test]
    fn window_zero_delivery_matches_ingest_second() {
        let plan: &[(u64, Option<ReaderId>)] =
            &[(0, Some(D1)), (1, None), (2, Some(D2)), (3, None)];
        let clean = ingest_clean(plan);
        let mut c = DataCollector::new();
        for &(s, reading) in plan {
            match reading {
                Some(r) => c.ingest_delivery(s, &[(s, O, r)]),
                None => c.ingest_delivery(s, &[]),
            }
        }
        assert_eq!(
            c.aggregated(O).unwrap().entries,
            clean.aggregated(O).unwrap().entries
        );
        assert_eq!(c.events(O), clean.events(O));
        assert_eq!(c.current_second(), clean.current_second());
    }

    #[test]
    fn outage_defers_leave_until_revival() {
        let mut c = DataCollector::new();
        c.note_outage(D1, 3, 6);
        feed(
            &mut c,
            &[
                (0, Some(D1)),
                (1, Some(D1)),
                (2, Some(D1)),
                (3, None), // outage starts: no LEAVE
                (4, None),
                (5, None),
                (6, None),
                (7, None), // first up silent second: deferred LEAVE
                (8, None),
            ],
        );
        let ev = c.events(O);
        assert_eq!(
            ev.last(),
            Some(&RfidEvent {
                kind: EventKind::Leave,
                reader: D1,
                second: 7
            }),
            "LEAVE deferred to the first post-outage silent second, got {ev:?}"
        );
        assert_eq!(
            ev.iter().filter(|e| e.kind == EventKind::Leave).count(),
            1,
            "exactly one LEAVE"
        );
    }

    #[test]
    fn outage_extends_episode_gap_tolerance() {
        // Silence 3..=6 is a known outage; re-detection at 7 is within
        // the effective tolerance (7-2 = 5 ≤ 3 + 4 downtime seconds), so
        // the episode continues instead of splitting.
        let mut c = DataCollector::new();
        c.note_outage(D1, 3, 6);
        feed(
            &mut c,
            &[
                (0, Some(D1)),
                (1, Some(D1)),
                (2, Some(D1)),
                (3, None),
                (4, None),
                (5, None),
                (6, None),
                (7, Some(D1)),
            ],
        );
        assert_eq!(
            c.last_two_devices(O),
            Some((D1, None)),
            "one continued episode, not an ENTER/LEAVE/ENTER split"
        );
        // Without the outage note the same silence splits the episode.
        let mut u = DataCollector::new();
        feed(
            &mut u,
            &[
                (0, Some(D1)),
                (1, Some(D1)),
                (2, Some(D1)),
                (3, None),
                (4, None),
                (5, None),
                (6, None),
                (7, Some(D1)),
            ],
        );
        assert_eq!(u.last_two_devices(O), Some((D1, Some(D1))));
    }

    #[test]
    fn handoff_during_outage_closes_previous_episode_once() {
        // D1 goes down at 3; the object shows up at D2 at 5 while D1 is
        // still down. Exactly one LEAVE(D1) is emitted.
        let mut c = DataCollector::new();
        c.note_outage(D1, 3, 8);
        feed(
            &mut c,
            &[
                (0, Some(D1)),
                (1, Some(D1)),
                (2, Some(D1)),
                (3, None),
                (4, None),
                (5, Some(D2)),
                (6, Some(D2)),
            ],
        );
        let leaves: Vec<_> = c
            .events(O)
            .iter()
            .filter(|e| e.kind == EventKind::Leave && e.reader == D1)
            .collect();
        assert_eq!(leaves.len(), 1, "got {leaves:?}");
        assert_eq!(c.last_two_devices(O), Some((D1, Some(D2))));
    }

    /// Drives a collector through a state-rich history: multiple objects,
    /// episode evictions, a reorder buffer with still-pending readings,
    /// and a registered outage window.
    fn eventful_collector() -> DataCollector {
        let mut c = DataCollector::new();
        c.set_reorder_window(2);
        c.note_outage(D3, 10, 14);
        let o2 = ObjectId::new(4);
        c.ingest_delivery(0, &[(0, O, D1), (0, o2, D2)]);
        c.ingest_delivery(1, &[(1, O, D1)]);
        c.ingest_delivery(3, &[(2, O, D1), (3, o2, D3)]);
        c.ingest_delivery(5, &[(4, O, D2), (5, O, D2), (5, o2, D3)]);
        // Still buffered (watermark has not reached them yet).
        c.ingest_delivery(6, &[(6, O, D3), (6, o2, D1)]);
        c
    }

    #[test]
    fn state_codec_round_trips_and_is_canonical() {
        let c = eventful_collector();
        let mut w = ByteWriter::new();
        c.encode_state(&mut w);
        let bytes = w.into_bytes();

        // Equal state encodes identically (HashMap order must not leak).
        let mut w2 = ByteWriter::new();
        eventful_collector().encode_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "encoding is not canonical");

        let mut r = ByteReader::new(&bytes);
        let d = DataCollector::decode_state(&mut r).unwrap();
        r.finish().unwrap();

        // Decoded collector re-encodes to the same bytes...
        let mut w3 = ByteWriter::new();
        d.encode_state(&mut w3);
        assert_eq!(bytes, w3.into_bytes(), "decode/encode not a round trip");

        // ...and behaves identically on the remaining stream.
        let (mut a, mut b) = (c, d);
        for s in 7..=12u64 {
            let batch = [(s, O, D1), (s, ObjectId::new(4), D2)];
            a.ingest_delivery(s, &batch);
            b.ingest_delivery(s, &batch);
        }
        a.flush_through(12);
        b.flush_through(12);
        for o in [O, ObjectId::new(4)] {
            assert_eq!(a.events(o), b.events(o));
            assert_eq!(a.last_two_devices(o), b.last_two_devices(o));
            let (aa, ba) = (a.aggregated(o).unwrap(), b.aggregated(o).unwrap());
            assert_eq!(aa.start_second, ba.start_second);
            assert_eq!(aa.entries, ba.entries);
        }
        assert_eq!(a.current_second(), b.current_second());
    }

    #[test]
    fn truncated_state_is_torn_not_a_panic() {
        let c = eventful_collector();
        let mut w = ByteWriter::new();
        c.encode_state(&mut w);
        let bytes = w.into_bytes();
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert_eq!(
                DataCollector::decode_state(&mut r).unwrap_err(),
                PersistError::Torn,
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn no_outage_notes_keep_behavior_identical() {
        // The outage-aware logic degrades to the classic semantics when
        // no windows were registered: replay an eventful plan both ways.
        let plan: &[(u64, Option<ReaderId>)] = &[
            (0, Some(D1)),
            (1, None),
            (2, Some(D1)),
            (3, None),
            (4, None),
            (5, None),
            (6, Some(D2)),
            (7, None),
            (8, Some(D3)),
        ];
        let c = ingest_clean(plan);
        // Expected values pinned from the pre-fault-layer collector.
        assert_eq!(c.last_two_devices(O), Some((D2, Some(D3))));
        let kinds: Vec<(EventKind, u64)> = c.events(O).iter().map(|e| (e.kind, e.second)).collect();
        assert!(kinds.contains(&(EventKind::Leave, 3)));
        assert!(kinds.contains(&(EventKind::Enter, 6)));
        assert!(kinds.contains(&(EventKind::Leave, 7)));
        assert!(kinds.contains(&(EventKind::Enter, 8)));
    }
}
