//! # ripq-rfid — RFID substrate for RIPQ
//!
//! Models the sensing side of the EDBT 2013 paper's setting: "a number of
//! RFID readers are deployed in hallways. Each user is attached with an
//! RFID tag, which can be identified by a reader when the user is within
//! the detection range of the reader" (§1).
//!
//! * [`Reader`] / [`deploy_uniform`] — readers placed on hallway
//!   centerlines with uniform spacing (the paper deploys 19 readers this
//!   way, §5) and disjoint activation ranges (§2.2).
//! * [`SensingModel`] — per-sample Bernoulli detection inside the
//!   activation range, reproducing the *false negatives* that make raw
//!   RFID data "inherently unreliable" (§1).
//! * [`DataCollector`] — the event-driven raw data collector of §4.1:
//!   aggregates tens of samples per second into one entry per second, and
//!   retains only the readings of the two most recent detecting devices
//!   per object.
//! * [`HistoryCollector`] — §4.1's noted extension for historical
//!   queries: keeps the full reading history and serves time-travel views
//!   through the [`ReadingStore`] abstraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod deployment;
mod history;
mod object;
mod reader;
mod reading;
mod sensing;
mod store;

pub use collector::{AggregatedReadings, DataCollector, EventKind, RfidEvent};
pub use deployment::{
    deploy, deploy_at_doors, deploy_random, deploy_uniform, ranges_disjoint, DeploymentStrategy,
};
pub use history::{HistoryCollector, HistoryView};
pub use object::ObjectId;
pub use reader::{Reader, ReaderId};
pub use reading::RawReading;
pub use sensing::SensingModel;
pub use store::ReadingStore;
