//! The device sensing model: noisy detection of tags by readers.

use crate::{ObjectId, RawReading, Reader, ReaderId};
use rand::Rng;
use ripq_geom::Point2;
use serde::{Deserialize, Serialize};

/// Stochastic sensing model for RFID readers.
///
/// Readers sample many times per second ("RFID readers usually have a high
/// reading rate of tens of samples per second", §4.1); each sample of a tag
/// inside the activation range succeeds independently with probability
/// `detection_probability`, modeling the false negatives caused by "RF
/// interference, limited detection range, tag orientation, and other
/// environmental phenomena" (§1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensingModel {
    /// Samples each reader takes per second (paper: "tens").
    pub samples_per_second: u32,
    /// Probability that a single sample of an in-range tag is detected.
    pub detection_probability: f64,
    /// Probability per object-second of a *ghost read*: a spurious
    /// detection by a uniformly random reader while the tag is not truly
    /// read anywhere. Real RFID deployments occasionally produce such
    /// false positives (multipath, tag cloning); the default is 0 (the
    /// paper models false negatives only).
    pub false_positive_rate: f64,
}

impl Default for SensingModel {
    fn default() -> Self {
        SensingModel {
            samples_per_second: 10,
            detection_probability: 0.85,
            false_positive_rate: 0.0,
        }
    }
}

impl SensingModel {
    /// Generates the raw readings produced during one second for one object
    /// at (true) position `p`.
    ///
    /// Every reader covering `p` samples `samples_per_second` times at
    /// uniform sub-second offsets; each sample independently succeeds with
    /// `detection_probability`.
    pub fn sample_second<R: Rng>(
        &self,
        rng: &mut R,
        second: u64,
        object: ObjectId,
        p: Point2,
        readers: &[Reader],
    ) -> Vec<RawReading> {
        let mut out = Vec::new();
        for reader in readers {
            if !reader.covers(p) {
                continue;
            }
            for s in 0..self.samples_per_second {
                if rng.random::<f64>() < self.detection_probability {
                    out.push(RawReading {
                        time: second as f64 + (s as f64 + 0.5) / self.samples_per_second as f64,
                        object,
                        reader: reader.id(),
                    });
                }
            }
        }
        out
    }

    /// Aggregated variant of [`SensingModel::sample_second`]: returns the
    /// detecting reader for the second, if at least one sample succeeded.
    /// With disjoint activation ranges at most one reader is in range; when
    /// ranges overlap, the reader with the most successful samples wins.
    /// When nothing truly detects the tag, a ghost read from a random
    /// reader is emitted with probability `false_positive_rate`.
    pub fn detect_second<R: Rng>(
        &self,
        rng: &mut R,
        p: Point2,
        readers: &[Reader],
    ) -> Option<ReaderId> {
        let mut best: Option<(ReaderId, u32)> = None;
        for reader in readers {
            if !reader.covers(p) {
                continue;
            }
            let mut hits = 0u32;
            for _ in 0..self.samples_per_second {
                if rng.random::<f64>() < self.detection_probability {
                    hits += 1;
                }
            }
            if hits > 0 && best.is_none_or(|(_, h)| hits > h) {
                best = Some((reader.id(), hits));
            }
        }
        if best.is_none()
            && self.false_positive_rate > 0.0
            && !readers.is_empty()
            && rng.random::<f64>() < self.false_positive_rate
        {
            let ghost = &readers[rng.random_range(0..readers.len())];
            return Some(ghost.id());
        }
        best.map(|(id, _)| id)
    }

    /// Probability that an in-range tag is missed for a *whole second*
    /// (all samples fail) — the residual false-negative rate after the
    /// collector's per-second aggregation (§4.1 argues this is tiny).
    pub fn per_second_miss_probability(&self) -> f64 {
        (1.0 - self.detection_probability).powi(self.samples_per_second as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ripq_graph::{EdgeId, GraphPos};

    fn reader_at(id: u32, x: f64, range: f64) -> Reader {
        Reader::new(
            ReaderId::new(id),
            Point2::new(x, 10.0),
            GraphPos::new(EdgeId::new(0), x),
            range,
        )
    }

    #[test]
    fn out_of_range_never_detected() {
        let model = SensingModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        let readers = vec![reader_at(0, 10.0, 2.0)];
        for _ in 0..100 {
            let got = model.detect_second(&mut rng, Point2::new(50.0, 10.0), &readers);
            assert_eq!(got, None);
        }
    }

    #[test]
    fn in_range_detected_almost_surely_with_default_model() {
        let model = SensingModel::default();
        let mut rng = StdRng::seed_from_u64(8);
        let readers = vec![reader_at(0, 10.0, 2.0)];
        let mut hits = 0;
        for _ in 0..1000 {
            if model
                .detect_second(&mut rng, Point2::new(10.5, 10.0), &readers)
                .is_some()
            {
                hits += 1;
            }
        }
        assert_eq!(hits, 1000, "miss prob ~5.8e-9, 1000 trials never miss");
    }

    #[test]
    fn single_sample_model_misses_sometimes() {
        let model = SensingModel {
            samples_per_second: 1,
            detection_probability: 0.5,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let readers = vec![reader_at(0, 10.0, 2.0)];
        let mut hits = 0;
        let trials = 2000;
        for _ in 0..trials {
            if model
                .detect_second(&mut rng, Point2::new(10.0, 10.0), &readers)
                .is_some()
            {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.05, "detection rate {rate} != ~0.5");
    }

    #[test]
    fn raw_readings_fall_into_the_right_second() {
        let model = SensingModel::default();
        let mut rng = StdRng::seed_from_u64(10);
        let readers = vec![reader_at(0, 10.0, 2.0)];
        let raw = model.sample_second(
            &mut rng,
            42,
            ObjectId::new(3),
            Point2::new(10.0, 10.0),
            &readers,
        );
        assert!(!raw.is_empty());
        for r in &raw {
            assert_eq!(r.second(), 42);
            assert_eq!(r.object, ObjectId::new(3));
            assert_eq!(r.reader, ReaderId::new(0));
        }
        // Roughly detection_probability × samples_per_second readings.
        assert!(raw.len() >= 4 && raw.len() <= 10, "got {}", raw.len());
    }

    #[test]
    fn miss_probability_formula() {
        let model = SensingModel {
            samples_per_second: 3,
            detection_probability: 0.5,
            ..Default::default()
        };
        assert!((model.per_second_miss_probability() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn ghost_reads_occur_at_configured_rate() {
        let model = SensingModel {
            false_positive_rate: 0.2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(12);
        let readers = vec![reader_at(0, 10.0, 2.0), reader_at(1, 30.0, 2.0)];
        let far = Point2::new(100.0, 100.0); // out of everyone's range
        let trials = 5000;
        let ghosts = (0..trials)
            .filter(|_| model.detect_second(&mut rng, far, &readers).is_some())
            .count();
        let rate = ghosts as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.02, "ghost rate {rate}");
    }

    #[test]
    fn true_detection_suppresses_ghosts() {
        let model = SensingModel {
            false_positive_rate: 1.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(13);
        let readers = vec![reader_at(0, 10.0, 2.0), reader_at(1, 30.0, 2.0)];
        for _ in 0..200 {
            // In range of reader 0: the true reading always wins.
            let got = model.detect_second(&mut rng, Point2::new(10.0, 10.0), &readers);
            assert_eq!(got, Some(ReaderId::new(0)));
        }
    }

    #[test]
    fn overlapping_readers_pick_strongest() {
        // Two overlapping readers both covering the point; the one with
        // more successful samples wins, so over many trials both appear but
        // a detection always occurs.
        let model = SensingModel::default();
        let mut rng = StdRng::seed_from_u64(11);
        let readers = vec![reader_at(0, 10.0, 5.0), reader_at(1, 12.0, 5.0)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            if let Some(id) = model.detect_second(&mut rng, Point2::new(11.0, 10.0), &readers) {
                seen.insert(id);
            }
        }
        assert!(seen.contains(&ReaderId::new(0)));
        assert!(seen.contains(&ReaderId::new(1)));
    }
}
