//! `ripq` — command-line front end to the RIPQ library.
//!
//! ```text
//! ripq plan office --svg office.svg     # inspect / render a floor plan
//! ripq simulate --objects 100 --duration 300
//! ripq trace --object 3 --svg trace.svg # offline trajectory reconstruction
//! ripq defaults                         # Table 2 of the paper
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use ripq::core::RipqError;
use ripq::floorplan::{
    multi_floor_office, office_building, shopping_mall, subway_station, FloorPlan, MallParams,
    MultiFloorParams, OfficeParams, SubwayParams,
};
use ripq::pf::{reconstruct_trajectory, TrajectoryConfig};
use ripq::rfid::HistoryCollector;
use ripq::sim::{
    Experiment, ExperimentParams, FaultPlan, ReadingGenerator, RecoveryOutcome, SimWorld, SvgScene,
    TraceGenerator,
};

fn main() {
    // Conventional CLI behavior: `ripq defaults | head -3` must exit
    // quietly when the reader closes the pipe, not panic.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let is_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("Broken pipe"));
        if is_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "plan" => cmd_plan(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "defaults" => cmd_defaults(),
        _ => {
            eprintln!(
                "usage: ripq <plan|simulate|trace|defaults> [options]\n\
                 \n\
                 plan [office|mall|subway|tower] [--svg FILE]\n\
                 simulate [--objects N] [--duration S] [--seed N] [--parallelism N]\n\
                 \x20        [--distance-backend dijkstra|alt]\n\
                 \x20        [--metrics-json FILE] [--trace]\n\
                 \x20        [--checkpoint-dir DIR] [--checkpoint-every S] [--query-budget N]\n\
                 \x20        [--fault-drop P] [--fault-dup P] [--fault-delay S]\n\
                 \x20        [--fault-outage-rate P] [--fault-outage-mean S] [--fault-seed N]\n\
                 trace [--object N] [--duration S] [--seed N] [--svg FILE]\n\
                 defaults"
            );
            std::process::exit(if cmd == "help" { 0 } else { 2 });
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_or<T: std::str::FromStr>(v: Option<String>, default: T) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn build_plan(kind: &str) -> FloorPlan {
    match kind {
        "mall" => shopping_mall(&MallParams::default()).expect("valid mall"),
        "subway" => subway_station(&SubwayParams::default()).expect("valid station"),
        "tower" => multi_floor_office(&MultiFloorParams::default()).expect("valid tower"),
        _ => office_building(&OfficeParams::default()).expect("valid office"),
    }
}

fn cmd_plan(args: &[String]) {
    let kind = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("office");
    let plan = build_plan(kind);
    println!("{kind} plan:");
    println!("  rooms:     {}", plan.rooms().len());
    println!("  hallways:  {}", plan.hallways().len());
    println!("  doors:     {}", plan.doors().len());
    println!("  bounds:    {}", plan.bounds());
    println!("  area:      {:.0} m^2 indoor", plan.indoor_area());
    println!(
        "  centerline:{:.0} m of hallway",
        plan.total_centerline_length()
    );
    let graph = ripq::graph::build_walking_graph(&plan);
    println!(
        "  graph:     {} nodes / {} edges, connected: {}",
        graph.nodes().len(),
        graph.edges().len(),
        graph.is_connected()
    );
    if let Some(path) = flag(args, "--svg") {
        let params = ExperimentParams::default();
        let world = SimWorld::build_with_plan(plan, &params);
        let mut scene = SvgScene::new(&world.plan, 10.0);
        scene.draw_graph(&world.graph).draw_readers(&world.readers);
        std::fs::write(&path, scene.finish()).expect("write SVG");
        println!("  wrote {path}");
    }
}

/// Builds the fault plan from `--fault-*` flags; all-zero (inactive) when
/// none are given, so plain `ripq simulate` keeps the classic pipeline.
fn fault_plan_from_args(args: &[String]) -> FaultPlan {
    let defaults = FaultPlan::none();
    FaultPlan {
        drop_probability: parse_or(flag(args, "--fault-drop"), 0.0),
        duplicate_probability: parse_or(flag(args, "--fault-dup"), 0.0),
        max_delay_seconds: parse_or(flag(args, "--fault-delay"), 0),
        outage_rate: parse_or(flag(args, "--fault-outage-rate"), 0.0),
        outage_mean_seconds: parse_or(
            flag(args, "--fault-outage-mean"),
            defaults.outage_mean_seconds,
        ),
        seed: parse_or(flag(args, "--fault-seed"), defaults.seed),
    }
}

/// Persists a metrics snapshot, converting the OS error into the
/// workspace error currency instead of panicking on e.g. an unwritable
/// path.
fn write_metrics_json(path: &str, json: &str) -> Result<(), RipqError> {
    std::fs::write(path, json).map_err(|e| RipqError::Io(format!("{path}: {e}")))
}

/// Eagerly validates the checkpoint directory — creates it and probes
/// writability — so an unusable `--checkpoint-dir` fails up front with a
/// clean error instead of silently degrading every in-run snapshot.
fn prepare_checkpoint_dir(dir: &str) -> Result<(), RipqError> {
    std::fs::create_dir_all(dir).map_err(|e| RipqError::Io(format!("{dir}: {e}")))?;
    let probe = std::path::Path::new(dir).join(".ripq-write-probe");
    // ripq-lint: allow(atomic-persistence) -- content-free writability probe, removed immediately
    std::fs::write(&probe, b"").map_err(|e| RipqError::Io(format!("{dir}: {e}")))?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

fn cmd_simulate(args: &[String]) {
    let metrics_json = flag(args, "--metrics-json");
    let trace_spans = args.iter().any(|a| a == "--trace");
    let faults = fault_plan_from_args(args);
    let checkpoint_dir = flag(args, "--checkpoint-dir");
    let checkpoint_every: u64 = parse_or(flag(args, "--checkpoint-every"), 30);
    let query_budget: Option<u64> = flag(args, "--query-budget").and_then(|s| s.parse().ok());
    let distance_backend = match flag(args, "--distance-backend") {
        None => ripq::core::DistanceBackend::Dijkstra,
        Some(s) => match s.parse() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
    };
    let params = ExperimentParams {
        num_objects: parse_or(flag(args, "--objects"), 60),
        duration: parse_or(flag(args, "--duration"), 240),
        seed: parse_or(flag(args, "--seed"), 0xED8_2013),
        // Preprocessing worker threads; results are bit-identical at any
        // setting, so this is purely a wall-clock knob.
        parallelism: flag(args, "--parallelism").and_then(|s| s.parse().ok()),
        eval_timestamps: 10,
        range_queries_per_timestamp: 40,
        knn_query_points: 12,
        observability: metrics_json.is_some() || trace_spans,
        faults,
        checkpoint_every: if checkpoint_dir.is_some() {
            checkpoint_every
        } else {
            0
        },
        query_budget,
        distance_backend,
        ..Default::default()
    };
    println!(
        "simulating {} objects for {} s (seed {}, {} preprocessing thread(s), {} distances)...",
        params.num_objects,
        params.duration,
        params.seed,
        params.parallelism.unwrap_or(1).max(1),
        params.distance_backend
    );
    if faults.is_active() {
        println!(
            "fault plan: drop {:.3}, dup {:.3}, delay <= {} s, outage rate {:.4} \
             (mean {:.0} s, seed {})",
            faults.drop_probability,
            faults.duplicate_probability,
            faults.max_delay_seconds,
            faults.outage_rate,
            faults.outage_mean_seconds,
            faults.seed
        );
    }
    if let Some(budget) = query_budget {
        println!(
            "query budget: {budget} cost units per evaluation pass (degraded answers allowed)"
        );
    }
    let mut experiment = Experiment::new(params);
    if let Some(dir) = &checkpoint_dir {
        if let Err(e) = prepare_checkpoint_dir(dir) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        println!(
            "recovery plan: checkpoint to {dir}/experiment.ckpt every {checkpoint_every} s, \
             resuming from any valid snapshot found there"
        );
        experiment = experiment.with_checkpoint_dir(dir);
    }
    let (r, snapshot) = experiment.run_with_metrics();
    match experiment.last_recovery() {
        None => {}
        Some(RecoveryOutcome::ColdStart) => println!("recovery: cold start (no snapshot on disk)"),
        Some(RecoveryOutcome::Resumed { replay_from }) => {
            println!("recovery: resumed from second {replay_from}");
        }
        Some(RecoveryOutcome::Quarantined { path }) => println!(
            "recovery: damaged snapshot quarantined to {}; rebuilt from scratch",
            path.display()
        ),
    }
    println!(
        "range-query KL divergence: PF {:.3}  SM {:.3}",
        r.range_kl_pf, r.range_kl_sm
    );
    println!(
        "kNN average hit rate:      PF {:.3}  SM {:.3}",
        r.knn_hit_pf, r.knn_hit_sm
    );
    println!(
        "top-1 / top-2 success:     {:.3} / {:.3}",
        r.top1_success, r.top2_success
    );
    println!(
        "({} range queries, {} kNN evaluations)",
        r.range_queries_evaluated, r.knn_queries_evaluated
    );
    if let Some(snapshot) = snapshot {
        if let Some(path) = metrics_json {
            match write_metrics_json(&path, &snapshot.to_json()) {
                Ok(()) => println!("wrote pipeline metrics to {path}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        if trace_spans {
            eprint!("{}", snapshot.render_trace());
        }
    }
}

fn cmd_trace(args: &[String]) {
    let object = parse_or(flag(args, "--object"), 0u32);
    let duration: u64 = parse_or(flag(args, "--duration"), 180);
    let seed: u64 = parse_or(flag(args, "--seed"), 7);
    let params = ExperimentParams::default();
    let world = SimWorld::build(&params);

    let mut rng_trace = StdRng::seed_from_u64(seed);
    let mut rng_sense = StdRng::seed_from_u64(seed + 1);
    let n = (object as usize + 1).max(4);
    let traces = TraceGenerator::new(params.room_dwell_mean).generate(
        &mut rng_trace,
        &world.graph,
        world.plan.rooms().len(),
        n,
        duration,
    );
    let gen = ReadingGenerator::new(&world.graph, &world.readers, params.sensing);
    let mut history = HistoryCollector::new();
    for s in 0..=duration {
        let det = gen.detections_at(&mut rng_sense, &traces, s);
        history.ingest_second(s, &det);
    }
    let mut rng_pf = StdRng::seed_from_u64(seed + 2);
    let obj = ripq::rfid::ObjectId::new(object);
    match reconstruct_trajectory(
        &mut rng_pf,
        &world.graph,
        &world.anchors,
        &world.readers,
        &history,
        obj,
        &TrajectoryConfig::default(),
    ) {
        Some(traj) => {
            let truth = &traces[object as usize];
            let mut err = 0.0;
            for tp in &traj {
                err += tp.mean.distance(truth.point_at(&world.graph, tp.second));
            }
            println!(
                "reconstructed {} samples for {obj}; mean error {:.2} m",
                traj.len(),
                err / traj.len() as f64
            );
            if let Some(path) = flag(args, "--svg") {
                let mut scene = SvgScene::new(&world.plan, 10.0);
                scene
                    .draw_readers(&world.readers)
                    .draw_trace(&world.graph, truth, "#4040d0");
                // Overlay the reconstruction's mode anchors.
                let dist: Vec<_> = traj.iter().map(|tp| (tp.mode, 0.08)).collect();
                scene.draw_distribution(&world.anchors, &dist, "#d04040");
                std::fs::write(&path, scene.finish()).expect("write SVG");
                println!("wrote {path} (blue = truth, red = reconstruction)");
            }
        }
        None => println!("{obj} was never detected in this simulation"),
    }
}

fn cmd_defaults() {
    let p = ExperimentParams::default();
    println!("Table 2 — default parameters:");
    println!("  particles:        {}", p.num_particles);
    println!("  query window:     {}%", p.query_window_fraction * 100.0);
    println!("  moving objects:   {}", p.num_objects);
    println!("  k:                {}", p.k);
    println!("  activation range: {} m", p.activation_range);
    println!("  readers:          {}", p.reader_count);
}
