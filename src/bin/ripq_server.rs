//! `ripq-server` — the streaming indoor spatial query daemon.
//!
//! ```text
//! ripq-server serve --uds /tmp/ripq.sock            # run the daemon
//! ripq-server record --out transcript.txt           # simulate a client session
//! ripq-server send --uds /tmp/ripq.sock --transcript transcript.txt
//! ripq-server replay --transcript transcript.txt    # in-process, no sockets
//! ```
//!
//! `replay` drives the deterministic engine directly and prints one
//! response frame per line — the format the golden fixtures and the CI
//! `server` job diff byte-for-byte. `--fail-after-frames N` simulates a
//! crash for recovery drills; a later `replay --recover` resumes from
//! the checkpoint directory and emits exactly the uninterrupted
//! stream's suffix.

use ripq::floorplan::{office_building, OfficeParams};
use ripq::server::{Endpoint, RetryPolicy, Server, ServerConfig, ServerCore, ServerRecovery};
use ripq::sim::transcript::{record_transcript, Transcript, TranscriptSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = args.get(1..).unwrap_or(&[]);
    let code = match cmd {
        "serve" => cmd_serve(rest),
        "record" => cmd_record(rest),
        "replay" => cmd_replay(rest),
        "send" => cmd_send(rest),
        _ => {
            eprintln!(
                "usage: ripq-server <serve|record|replay|send> [options]\n\
                 \n\
                 serve  (--uds PATH | --tcp ADDR) [--workers N] [--seed N]\n\
                 \x20      [--checkpoint-dir DIR] [--checkpoint-every-ticks N] [--recover]\n\
                 \x20      [--metrics-json FILE] [--max-frames-per-tick N]\n\
                 \x20      [--max-subscriptions N] [--max-conn-bytes N] [--query-budget N]\n\
                 record --out FILE [--seed N] [--objects N] [--seconds N]\n\
                 \x20      [--tick-every N] [--range-subs N] [--knn-subs N]\n\
                 \x20      [--checkpoint-after S | --no-checkpoint] [--no-metrics]\n\
                 \x20      [--tick-budget N]\n\
                 replay --transcript FILE [--workers N] [--seed N] [--metrics-json FILE]\n\
                 \x20      [--checkpoint-dir DIR] [--recover] [--fail-after-frames N]\n\
                 \x20      [--max-frames-per-tick N] [--max-subscriptions N]\n\
                 \x20      [--query-budget N] [--retry] [--retry-seed N] [--retry-max-rounds N]\n\
                 send   (--uds PATH | --tcp ADDR) --transcript FILE\n\
                 \x20      [--retry] [--retry-seed N] [--retry-max-rounds N]"
            );
            if cmd == "help" {
                0
            } else {
                2
            }
        }
    };
    std::process::exit(code);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_or<T: std::str::FromStr>(v: Option<String>, default: T) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn endpoint_from(args: &[String]) -> Option<Endpoint> {
    if let Some(path) = flag(args, "--uds") {
        return Some(Endpoint::Uds(path.into()));
    }
    flag(args, "--tcp").map(Endpoint::Tcp)
}

fn server_config(args: &[String]) -> ServerConfig {
    ServerConfig {
        seed: parse_or(flag(args, "--seed"), ServerConfig::default().seed),
        workers: flag(args, "--workers").and_then(|s| s.parse().ok()),
        checkpoint_every_ticks: parse_or(flag(args, "--checkpoint-every-ticks"), 0),
        unseen_after: parse_or(flag(args, "--unseen-after"), 60),
        max_frames_per_tick: parse_or(flag(args, "--max-frames-per-tick"), 0),
        max_subscriptions: parse_or(flag(args, "--max-subscriptions"), 0),
        max_conn_response_bytes: parse_or(flag(args, "--max-conn-bytes"), 0),
        query_budget: flag(args, "--query-budget").and_then(|s| s.parse().ok()),
        ..ServerConfig::default()
    }
}

fn retry_policy(args: &[String]) -> Option<RetryPolicy> {
    if !args.iter().any(|a| a == "--retry") {
        return None;
    }
    let defaults = RetryPolicy::default();
    Some(RetryPolicy {
        seed: parse_or(flag(args, "--retry-seed"), defaults.seed),
        max_rounds: parse_or(flag(args, "--retry-max-rounds"), defaults.max_rounds),
    })
}

fn report_retry(outcome: &ripq::server::RetryOutcome) {
    eprintln!(
        "retry: {} busy lines, {} rounds, {} frames resent, {} backoff ticks{}{}",
        outcome.busy_lines,
        outcome.retry_rounds,
        outcome.frames_resent,
        outcome.backoff_ticks,
        if outcome.gave_up { ", GAVE UP" } else { "" },
        if outcome.frames_abandoned > 0 {
            format!(", {} frames abandoned", outcome.frames_abandoned)
        } else {
            String::new()
        }
    );
}

/// Builds the daemon core over the default office plan, wiring the
/// checkpoint directory and (optionally) recovering a previous life.
/// Returns the core plus how many input frames recovery already covers.
fn build_core(args: &[String]) -> Result<(ServerCore, u64), String> {
    let plan = office_building(&OfficeParams::default()).map_err(|e| e.to_string())?;
    let mut core = ServerCore::new(plan, server_config(args));
    let checkpoint_dir = flag(args, "--checkpoint-dir");
    let recover = args.iter().any(|a| a == "--recover");
    let mut skip = 0;
    if let Some(dir) = &checkpoint_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
        if recover {
            match core.recover(dir).map_err(|e| e.to_string())? {
                ServerRecovery::ColdStart => eprintln!("recovery: cold start"),
                ServerRecovery::Resumed {
                    skip_frames,
                    lines_emitted,
                } => {
                    eprintln!(
                        "recovery: resumed past {skip_frames} frames / {lines_emitted} lines"
                    );
                    skip = skip_frames;
                }
                ServerRecovery::Quarantined { path } => {
                    eprintln!(
                        "recovery: damaged snapshot quarantined to {}; starting cold",
                        path.display()
                    );
                    let plan =
                        office_building(&OfficeParams::default()).map_err(|e| e.to_string())?;
                    core = ServerCore::new(plan, server_config(args));
                    core.set_checkpoint_dir(dir);
                }
            }
        } else {
            core.set_checkpoint_dir(dir);
        }
    } else if recover {
        return Err("--recover needs --checkpoint-dir".to_string());
    }
    Ok((core, skip))
}

fn write_metrics(args: &[String], core: &ServerCore) -> Result<(), String> {
    if let Some(path) = flag(args, "--metrics-json") {
        std::fs::write(&path, core.metrics_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote metrics to {path}");
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> i32 {
    let Some(endpoint) = endpoint_from(args) else {
        eprintln!("error: serve needs --uds PATH or --tcp ADDR");
        return 2;
    };
    let (mut core, _) = match build_core(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let server = match Server::bind(&endpoint) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    match server.endpoint() {
        Endpoint::Tcp(addr) => println!("listening tcp:{addr}"),
        Endpoint::Uds(path) => println!("listening uds:{}", path.display()),
    }
    if let Err(e) = server.serve(&mut core) {
        eprintln!("error: {e}");
        return 1;
    }
    eprintln!(
        "shutdown after {} frames / {} lines",
        core.frames_processed(),
        core.lines_emitted()
    );
    if let Err(e) = write_metrics(args, &core) {
        eprintln!("error: {e}");
        return 1;
    }
    0
}

fn cmd_record(args: &[String]) -> i32 {
    let Some(out) = flag(args, "--out") else {
        eprintln!("error: record needs --out FILE");
        return 2;
    };
    let defaults = TranscriptSpec::default();
    let spec = TranscriptSpec {
        seed: parse_or(flag(args, "--seed"), defaults.seed),
        objects: parse_or(flag(args, "--objects"), defaults.objects),
        seconds: parse_or(flag(args, "--seconds"), defaults.seconds),
        tick_every: parse_or(flag(args, "--tick-every"), defaults.tick_every),
        range_subs: parse_or(flag(args, "--range-subs"), defaults.range_subs),
        knn_subs: parse_or(flag(args, "--knn-subs"), defaults.knn_subs),
        checkpoint_after: if args.iter().any(|a| a == "--no-checkpoint") {
            None
        } else {
            Some(parse_or(
                flag(args, "--checkpoint-after"),
                defaults.checkpoint_after.unwrap_or(60),
            ))
        },
        metrics_frame: !args.iter().any(|a| a == "--no-metrics"),
        tick_budget: flag(args, "--tick-budget").and_then(|s| s.parse().ok()),
    };
    let transcript = record_transcript(&spec);
    if let Err(e) = transcript.save(std::path::Path::new(&out)) {
        eprintln!("error: {out}: {e}");
        return 1;
    }
    eprintln!("recorded {} frames to {out}", transcript.frames.len());
    0
}

fn cmd_replay(args: &[String]) -> i32 {
    let Some(path) = flag(args, "--transcript") else {
        eprintln!("error: replay needs --transcript FILE");
        return 2;
    };
    let transcript = match Transcript::load(std::path::Path::new(&path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let (mut core, skip) = match build_core(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let fail_after: Option<u64> = flag(args, "--fail-after-frames").and_then(|s| s.parse().ok());
    if let Some(policy) = retry_policy(args) {
        // Shed-aware replay: the in-process equivalent of the backoff
        // socket client. Incompatible with crash simulation (the retry
        // loop owns frame pacing).
        let remaining: Vec<String> = transcript
            .frames
            .iter()
            .skip(skip as usize)
            .cloned()
            .collect();
        let outcome = ripq::server::replay_with_retry(&mut core, &remaining, &policy);
        for line in &outcome.lines {
            println!("{line}");
        }
        report_retry(&outcome);
    } else {
        for (i, frame) in transcript.frames.iter().enumerate().skip(skip as usize) {
            if fail_after.is_some_and(|n| (i as u64) >= n) {
                eprintln!("simulated crash before frame {i}");
                return 3;
            }
            for line in core.handle_frame(frame.as_bytes()) {
                println!("{line}");
            }
            if core.is_shutdown() {
                break;
            }
        }
    }
    if let Err(e) = write_metrics(args, &core) {
        eprintln!("error: {e}");
        return 1;
    }
    0
}

fn cmd_send(args: &[String]) -> i32 {
    let Some(endpoint) = endpoint_from(args) else {
        eprintln!("error: send needs --uds PATH or --tcp ADDR");
        return 2;
    };
    let Some(path) = flag(args, "--transcript") else {
        eprintln!("error: send needs --transcript FILE");
        return 2;
    };
    let transcript = match Transcript::load(std::path::Path::new(&path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if let Some(policy) = retry_policy(args) {
        return match ripq::server::send_frames_with_retry(
            &endpoint,
            &transcript.payloads(),
            &policy,
        ) {
            Ok(outcome) => {
                for line in &outcome.lines {
                    println!("{line}");
                }
                report_retry(&outcome);
                i32::from(outcome.gave_up)
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        };
    }
    match ripq::server::send_frames(&endpoint, &transcript.payloads()) {
        Ok(lines) => {
            for line in &lines {
                println!("{line}");
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}
