//! # RIPQ — RFID and particle filter-based indoor spatial query evaluation
//!
//! Umbrella crate re-exporting the whole workspace. See the README for a
//! guided tour and `DESIGN.md` for the paper-to-module map.
//!
//! # Example
//!
//! Track one tagged person and ask a probabilistic range query:
//!
//! ```
//! use ripq::core::{IndoorQuerySystem, SystemConfig};
//! use ripq::floorplan::{office_building, OfficeParams};
//! use ripq::geom::Rect;
//! use ripq::rfid::ObjectId;
//!
//! let plan = office_building(&OfficeParams::default()).unwrap();
//! let mut system = IndoorQuerySystem::new(plan, SystemConfig::default(), 42);
//!
//! // The person pings reader d0 for three seconds.
//! let d0 = system.readers()[0];
//! for second in 0..3 {
//!     system.ingest_detections(second, &[(ObjectId::new(0), d0.id())]);
//! }
//!
//! let q = system
//!     .register_range(Rect::centered(d0.position(), 10.0, 6.0))
//!     .unwrap();
//! let report = system.evaluate(3);
//! assert!(report.range_results[&q].probability(ObjectId::new(0)) > 0.5);
//! ```

#![forbid(unsafe_code)]

pub use ripq_core as core;
pub use ripq_floorplan as floorplan;
pub use ripq_geom as geom;
pub use ripq_graph as graph;
pub use ripq_obs as obs;
pub use ripq_persist as persist;
pub use ripq_pf as pf;
pub use ripq_rfid as rfid;
pub use ripq_server as server;
pub use ripq_sim as sim;
pub use ripq_symbolic as symbolic;
