//! Overload harness: admission control, the deterministic retry client,
//! supervised executors with the dead-letter queue, and graceful
//! shutdown — the PR 10 acceptance suite.
//!
//! The headline invariant: because the server sheds data frames as a
//! strict *suffix* of each tick interval and defers the tick itself,
//! a flooded session driven by the seeded backoff client converges to
//! response lines **byte-identical** to the unthrottled run — across
//! repeated runs and worker counts 1/2/4.

use proptest::prelude::*;
use ripq::floorplan::{office_building, OfficeParams};
use ripq::server::{
    replay_with_retry, Executor, RetryPolicy, ServerConfig, ServerCore, ServerEvent,
    ServerRecovery, SupervisorPolicy,
};
use ripq::sim::transcript::{record_transcript, TranscriptSpec};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ripq_server_overload_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn core_with(config: ServerConfig) -> ServerCore {
    let plan = office_building(&OfficeParams::default()).expect("default office plan");
    ServerCore::new(plan, config)
}

fn reader_count() -> u32 {
    core_with(ServerConfig::default()).system().readers().len() as u32
}

/// A dense synthetic session: whole-floor subscription, `objects`
/// tags hopping across the reader deployment every second, a tick
/// closing every interval. `outage` silences a reader id range for a
/// window of seconds — the chaos-cell knob.
fn flood_frames(
    seconds: u64,
    tick_every: u64,
    objects: u32,
    outage: Option<(std::ops::Range<u32>, std::ops::Range<u64>)>,
) -> Vec<String> {
    let readers = reader_count().max(1);
    let mut frames =
        vec!["{\"op\":\"subscribe\",\"sub\":1,\"range\":[-500,-500,1000,1000]}".to_string()];
    for second in 0..seconds {
        let readings: Vec<String> = (0..objects)
            .filter_map(|o| {
                let reader = (o + second as u32) % readers;
                if let Some((dead_readers, window)) = &outage {
                    if dead_readers.contains(&reader) && window.contains(&second) {
                        return None; // reader dark: its samples never arrive
                    }
                }
                Some(format!("[{o},{reader}]"))
            })
            .collect();
        frames.push(format!(
            "{{\"op\":\"reading\",\"second\":{second},\"readings\":[{}]}}",
            readings.join(",")
        ));
        if tick_every > 0 && (second + 1) % tick_every == 0 {
            frames.push(format!("{{\"op\":\"tick\",\"second\":{second}}}"));
        }
    }
    frames
}

fn replay_plain(frames: &[String], config: ServerConfig) -> Vec<String> {
    let mut core = core_with(config);
    let mut lines = Vec::new();
    for frame in frames {
        lines.extend(core.handle_frame(frame.as_bytes()));
        if core.is_shutdown() {
            break;
        }
    }
    lines
}

/// The tentpole: a flooded session recovered by the deterministic retry
/// client is byte-identical to the unthrottled run, across 2 runs and
/// worker counts 1/2/4.
#[test]
fn flooded_retry_session_converges_across_runs_and_workers() {
    let frames = flood_frames(40, 10, 4, None);
    let expected = replay_plain(&frames, ServerConfig::default());
    assert!(
        expected.iter().any(|l| l.starts_with("{\"delta\":")),
        "scenario must produce deltas"
    );
    for workers in [1usize, 2, 4] {
        for run in 0..2 {
            let mut flooded = core_with(ServerConfig {
                workers: Some(workers),
                max_frames_per_tick: 6,
                ..ServerConfig::default()
            });
            let outcome = replay_with_retry(&mut flooded, &frames, &RetryPolicy::default());
            assert!(outcome.busy_lines > 0, "budget 6 vs 10 frames must shed");
            assert!(!outcome.gave_up && outcome.frames_abandoned == 0);
            assert_eq!(
                outcome.lines, expected,
                "run {run} with {workers} workers diverged from the unthrottled stream"
            );
        }
    }
}

/// Two clients with different retry seeds back off differently but
/// deliver the same bytes: the jitter schedule is presentation, the
/// converged stream is the contract.
#[test]
fn retry_seed_changes_backoff_but_not_the_delivered_stream() {
    let frames = flood_frames(30, 10, 4, None);
    let expected = replay_plain(&frames, ServerConfig::default());
    // Budget 3 against 10-frame intervals forces multi-round retries,
    // where the jitter window opens past 1 tick and seeds can differ.
    let flooded_config = || ServerConfig {
        max_frames_per_tick: 3,
        ..ServerConfig::default()
    };
    let mut a = core_with(flooded_config());
    let mut b = core_with(flooded_config());
    let out_a = replay_with_retry(
        &mut a,
        &frames,
        &RetryPolicy {
            seed: 1,
            max_rounds: 8,
        },
    );
    let out_b = replay_with_retry(
        &mut b,
        &frames,
        &RetryPolicy {
            seed: 2,
            max_rounds: 8,
        },
    );
    assert_eq!(out_a.lines, expected);
    assert_eq!(out_b.lines, expected);
    assert_ne!(
        out_a.backoff_ticks, out_b.backoff_ticks,
        "different seeds should jitter differently over many rounds"
    );
}

/// The chaos cell: reader outages crossed with admission-control
/// shedding. The flooded-and-retried session must still converge on the
/// degraded (outage-filtered) timeline, across worker counts.
#[test]
fn outage_crossed_with_shedding_still_converges() {
    let readers = reader_count();
    let dark = 0..(readers / 3).max(1);
    for window in [10u64..20, 5u64..25] {
        let frames = flood_frames(30, 10, 4, Some((dark.clone(), window.clone())));
        let expected = replay_plain(&frames, ServerConfig::default());
        for workers in [1usize, 2, 4] {
            let mut flooded = core_with(ServerConfig {
                workers: Some(workers),
                max_frames_per_tick: 6,
                ..ServerConfig::default()
            });
            let outcome = replay_with_retry(&mut flooded, &frames, &RetryPolicy::default());
            assert!(outcome.busy_lines > 0);
            assert_eq!(
                outcome.lines, expected,
                "outage {window:?} × shedding diverged at {workers} workers"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property form of the tentpole over recorded transcripts: any
    /// seed × budget × object count, with every interval closed by a
    /// tick, converges byte-identically.
    #[test]
    fn flooded_transcript_replay_converges(
        seed in 0u64..1_000,
        budget in 2u64..=6,
        objects in 3usize..=5,
        ticks in 2u64..=3,
    ) {
        let transcript = record_transcript(&TranscriptSpec {
            seed,
            objects,
            seconds: ticks * 10,
            tick_every: 10,
            checkpoint_after: None,
            metrics_frame: false,
            ..TranscriptSpec::default()
        });
        let expected = replay_plain(&transcript.frames, ServerConfig::default());
        let mut flooded = core_with(ServerConfig {
            max_frames_per_tick: budget,
            ..ServerConfig::default()
        });
        let outcome = replay_with_retry(&mut flooded, &transcript.frames, &RetryPolicy::default());
        prop_assert!(!outcome.gave_up);
        prop_assert_eq!(outcome.frames_abandoned, 0u64);
        prop_assert_eq!(outcome.lines, expected);
    }
}

/// An executor that always panics — fault injection for the supervisor.
/// Lives in the test crate so the production panic ratchet stays at
/// zero.
struct AlwaysPanics;

impl Executor for AlwaysPanics {
    fn name(&self) -> &'static str {
        "flaky"
    }

    fn on_event(&mut self, _event: &ServerEvent) -> Vec<String> {
        panic!("injected executor fault")
    }
}

fn supervised_config() -> ServerConfig {
    ServerConfig {
        supervisor: SupervisorPolicy {
            max_attempts: 2,
            quarantine_after: 1,
            open_ticks: 1_000, // stays open for the whole scenario
            dead_letter_capacity: 16,
        },
        ..ServerConfig::default()
    }
}

/// Frames that fire a geofence event: subscribe on a window around one
/// reader, park an object there, tick.
fn event_frames() -> Vec<String> {
    let core = core_with(ServerConfig::default());
    let reader = core.system().readers()[2];
    let window = ripq::geom::Rect::centered(reader.position(), 10.0, 6.0);
    let mut frames = vec![format!(
        "{{\"op\":\"subscribe\",\"sub\":7,\"range\":[{},{},{},{}]}}",
        window.min().x,
        window.min().y,
        window.width(),
        window.height()
    )];
    for s in 0..3u64 {
        frames.push(format!(
            "{{\"op\":\"reading\",\"second\":{s},\"readings\":[[0,{}]]}}",
            reader.id().raw()
        ));
    }
    frames.push("{\"op\":\"tick\",\"second\":3}".to_string());
    frames
}

/// Breaker trip + dead-letter durability: a panicking executor is
/// retried, quarantined behind an open circuit, its event diverted to
/// the dead-letter queue — and both the breaker and the queue survive a
/// crash/recover cycle through the v2 sidecar.
#[test]
fn breaker_trips_and_dead_letters_survive_crash_recovery() {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep injected panics quiet
    let dir = temp_dir("dlq");

    let mut life1 = core_with(supervised_config());
    life1.push_executor(Box::new(AlwaysPanics));
    life1.set_checkpoint_dir(&dir);
    for frame in event_frames() {
        life1.handle_frame(frame.as_bytes());
    }
    assert!(
        life1.dead_letters().count() >= 1,
        "exhausted retries must dead-letter the event"
    );
    assert_eq!(life1.quarantined_executors(), vec!["flaky"]);
    let listing = life1.handle_frame(b"{\"op\":\"dead_letters\"}");
    assert!(listing[0].starts_with("{\"dead_letters\":"));
    assert!(listing[0].contains("\"executor\":\"flaky\""));
    assert!(life1
        .metrics_json()
        .contains("\"server.executor.quarantined\": 1"));
    life1.handle_frame(b"{\"op\":\"checkpoint\"}");
    drop(life1); // the crash

    let mut life2 = core_with(supervised_config());
    life2.push_executor(Box::new(AlwaysPanics));
    let outcome = life2.recover(&dir).expect("recovery succeeds");
    assert!(matches!(outcome, ServerRecovery::Resumed { .. }));
    assert!(
        life2.dead_letters().count() >= 1,
        "dead letters must survive the sidecar round trip"
    );
    assert_eq!(
        life2.quarantined_executors(),
        vec!["flaky"],
        "the open breaker must survive recovery"
    );
    // While the circuit is open, new events go straight to the queue —
    // the executor is never re-invoked (it would panic again).
    let before = life2.dead_letters().count();
    life2.handle_frame(b"{\"op\":\"reading\",\"second\":20,\"readings\":[]}");
    life2.handle_frame(b"{\"op\":\"tick\",\"second\":21}");
    assert!(
        life2.dead_letters().count() >= before,
        "open circuit short-circuits"
    );

    // Drain empties the queue through the protocol.
    let drained = life2.handle_frame(b"{\"op\":\"dead_letters\",\"drain\":true}");
    assert!(drained[0].starts_with("{\"dead_letters\":"));
    assert_eq!(life2.dead_letters().count(), 0);
    let empty = life2.handle_frame(b"{\"op\":\"dead_letters\"}");
    assert_eq!(empty[0], "{\"dead_letters\":0,\"letters\":[]}");

    std::panic::set_hook(hook);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill-vs-graceful byte identity: the checkpoint a graceful shutdown
/// writes before its ack is byte-for-byte the checkpoint an explicit
/// `checkpoint` frame would have written at the same point — an
/// operator stop loses nothing a crash after a checkpoint wouldn't.
#[test]
fn graceful_shutdown_checkpoint_matches_explicit_checkpoint_bytes() {
    let frames = flood_frames(20, 10, 3, None);

    let dir_kill = temp_dir("kill");
    let mut killed = core_with(ServerConfig::default());
    killed.set_checkpoint_dir(&dir_kill);
    for frame in &frames {
        killed.handle_frame(frame.as_bytes());
    }
    killed.handle_frame(b"{\"op\":\"checkpoint\"}");
    drop(killed); // kill -9 right after the checkpoint

    let dir_graceful = temp_dir("graceful");
    let mut graceful = core_with(ServerConfig::default());
    graceful.set_checkpoint_dir(&dir_graceful);
    for frame in &frames {
        graceful.handle_frame(frame.as_bytes());
    }
    let ack = graceful.handle_frame(b"{\"op\":\"shutdown\"}");
    assert_eq!(
        ack.last().map(String::as_str),
        Some("{\"ok\":\"shutdown\"}")
    );
    assert!(graceful.is_shutdown());

    for name in ["server.ckpt", "system.ckpt"] {
        let killed_bytes = std::fs::read(dir_kill.join(name)).expect("kill-path checkpoint");
        let graceful_bytes =
            std::fs::read(dir_graceful.join(name)).expect("graceful-path checkpoint");
        assert_eq!(
            killed_bytes, graceful_bytes,
            "{name} must be byte-identical between kill-after-checkpoint and graceful shutdown"
        );
    }

    // And the graceful checkpoint is a usable recovery point.
    let mut life2 = core_with(ServerConfig::default());
    let outcome = life2.recover(&dir_graceful).expect("recovery succeeds");
    let ServerRecovery::Resumed { skip_frames, .. } = outcome else {
        panic!("expected Resumed, got {outcome:?}");
    };
    assert_eq!(skip_frames as usize, frames.len() + 1);

    let _ = std::fs::remove_dir_all(&dir_kill);
    let _ = std::fs::remove_dir_all(&dir_graceful);
}

/// Shed-path instruments land in the metrics snapshot with the exact
/// registry names, and stay silent when admission control is off.
#[test]
fn overload_counters_register_only_under_pressure() {
    let frames = flood_frames(20, 10, 4, None);

    let calm = {
        let mut core = core_with(ServerConfig::default());
        for frame in &frames {
            core.handle_frame(frame.as_bytes());
        }
        core.metrics_json()
    };
    assert!(
        !calm.contains("server.overload."),
        "no overload counters without admission control"
    );

    let mut flooded = core_with(ServerConfig {
        max_frames_per_tick: 6,
        ..ServerConfig::default()
    });
    let _ = replay_with_retry(&mut flooded, &frames, &RetryPolicy::default());
    let metrics = flooded.metrics_json();
    for key in [
        "server.overload.frames_shed",
        "server.overload.ticks_deferred",
        "server.overload.busy_responses",
    ] {
        assert!(metrics.contains(key), "missing {key} in:\n{metrics}");
    }
}
