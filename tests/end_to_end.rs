//! End-to-end integration: simulator → readings → collector → particle
//! filter → query evaluation, asserting the paper's qualitative results.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ripq::core::{
    evaluate_knn, evaluate_range, IndoorQuerySystem, KnnQuery, QueryId, SystemConfig,
};
use ripq::geom::Rect;
use ripq::pf::{ParticleCache, ParticlePreprocessor, PreprocessorConfig};
use ripq::rfid::{DataCollector, ObjectId};
use ripq::sim::{
    metrics, Experiment, ExperimentParams, GroundTruth, ReadingGenerator, SimWorld, TraceGenerator,
};

/// The headline result (§5): the particle-filter method beats the symbolic
/// baseline on both range-KL and kNN hit rate at (reduced-scale) Table-2
/// parameters.
#[test]
fn particle_filter_beats_symbolic_baseline() {
    let params = ExperimentParams {
        num_objects: 50,
        duration: 220,
        warmup: 60,
        eval_timestamps: 8,
        range_queries_per_timestamp: 40,
        knn_query_points: 10,
        ..Default::default()
    };
    let report = Experiment::new(params).run();
    assert!(
        report.range_kl_pf < report.range_kl_sm,
        "range KL: PF {} !< SM {}",
        report.range_kl_pf,
        report.range_kl_sm
    );
    assert!(
        report.knn_hit_pf > report.knn_hit_sm,
        "kNN hit: PF {} !> SM {}",
        report.knn_hit_pf,
        report.knn_hit_sm
    );
    assert!(report.top1_success > 0.5, "top-1 {}", report.top1_success);
    assert!(report.top2_success > report.top1_success);
}

/// Range-query probabilities reported for a single object never exceed 1,
/// and the whole-building window recovers (almost) all of its mass.
#[test]
fn range_probabilities_are_calibrated() {
    let params = ExperimentParams::smoke();
    let w = SimWorld::build(&params);
    let mut rng_trace = StdRng::seed_from_u64(1);
    let mut rng_sense = StdRng::seed_from_u64(2);
    let mut rng_pf = StdRng::seed_from_u64(3);
    let traces =
        TraceGenerator::new(8.0).generate(&mut rng_trace, &w.graph, w.plan.rooms().len(), 20, 150);
    let gen = ReadingGenerator::new(&w.graph, &w.readers, params.sensing);
    let objects: Vec<_> = traces.iter().map(|t| t.object).collect();
    let mut collector = DataCollector::new();
    for s in 0..=150u64 {
        let det = gen.detections_at(&mut rng_sense, &traces, s);
        collector.ingest_second(s, &det);
    }
    let pre = ParticlePreprocessor::new(
        &w.graph,
        &w.anchors,
        &w.readers,
        PreprocessorConfig::default(),
    );
    let index = pre.process(&mut rng_pf, &collector, &objects, 150, None);

    let whole = evaluate_range(&w.plan, &w.anchors, &index, &w.plan.bounds());
    for (o, p) in whole.iter() {
        assert!(p <= 1.0 + 1e-9, "{o} has p = {p} > 1");
        assert!(p >= 0.0);
    }
    // Objects that were processed should be found somewhere in the
    // building with high total probability.
    let found: Vec<_> = objects
        .iter()
        .filter(|o| index.distribution(o).is_some())
        .collect();
    assert!(!found.is_empty());
    for o in found {
        assert!(
            whole.probability(*o) > 0.9,
            "{o} only has {} of its mass in the building",
            whole.probability(*o)
        );
    }
}

/// The kNN result set's total probability always reaches k (when at least
/// k objects exist), per Algorithm 4's stopping rule.
#[test]
fn knn_total_probability_reaches_k() {
    let params = ExperimentParams::smoke();
    let w = SimWorld::build(&params);
    let mut rng_trace = StdRng::seed_from_u64(4);
    let mut rng_sense = StdRng::seed_from_u64(5);
    let mut rng_pf = StdRng::seed_from_u64(6);
    let traces =
        TraceGenerator::new(8.0).generate(&mut rng_trace, &w.graph, w.plan.rooms().len(), 15, 120);
    let gen = ReadingGenerator::new(&w.graph, &w.readers, params.sensing);
    let objects: Vec<_> = traces.iter().map(|t| t.object).collect();
    let mut collector = DataCollector::new();
    for s in 0..=120u64 {
        let det = gen.detections_at(&mut rng_sense, &traces, s);
        collector.ingest_second(s, &det);
    }
    let pre = ParticlePreprocessor::new(
        &w.graph,
        &w.anchors,
        &w.readers,
        PreprocessorConfig::default(),
    );
    let index = pre.process(&mut rng_pf, &collector, &objects, 120, None);
    let processed = index.object_count();
    assert!(processed >= 5, "need a populated index, got {processed}");

    for k in [1usize, 2, 4] {
        let q = KnnQuery::new(QueryId::new(0), w.plan.bounds().center(), k).unwrap();
        let rs = evaluate_knn(&w.graph, &w.anchors, &index, &q);
        assert!(
            rs.total_probability() >= (k.min(processed)) as f64 - 1e-6,
            "k={k}: total {}",
            rs.total_probability()
        );
        assert!(rs.len() >= k.min(processed));
    }
}

/// The ground-truth kNN and the PF kNN agree well when every object was
/// recently detected (fresh readings everywhere).
#[test]
fn knn_matches_truth_on_fresh_readings() {
    let params = ExperimentParams {
        num_objects: 30,
        duration: 180,
        ..ExperimentParams::smoke()
    };
    let w = SimWorld::build(&params);
    let mut rng_trace = StdRng::seed_from_u64(7);
    let mut rng_sense = StdRng::seed_from_u64(8);
    let mut rng_pf = StdRng::seed_from_u64(9);
    let traces = TraceGenerator::new(5.0).generate(
        &mut rng_trace,
        &w.graph,
        w.plan.rooms().len(),
        params.num_objects,
        params.duration,
    );
    let gen = ReadingGenerator::new(&w.graph, &w.readers, params.sensing);
    let gt = GroundTruth::new(&w.graph, &traces);
    let objects: Vec<_> = traces.iter().map(|t| t.object).collect();
    let mut collector = DataCollector::new();
    let mut cache = ParticleCache::new();
    let pre = ParticlePreprocessor::new(
        &w.graph,
        &w.anchors,
        &w.readers,
        PreprocessorConfig::default(),
    );
    let mut hits = metrics::Mean::default();
    for s in 0..=params.duration {
        let det = gen.detections_at(&mut rng_sense, &traces, s);
        collector.ingest_second(s, &det);
        if s < 60 || s % 30 != 0 {
            continue;
        }
        let index = pre.process(&mut rng_pf, &collector, &objects, s, Some(&mut cache));
        let q_point = w.plan.hallways()[1].footprint().center();
        let truth = gt.knn(q_point, 3, s);
        let q = KnnQuery::new(QueryId::new(0), q_point, 3).unwrap();
        let rs = evaluate_knn(&w.graph, &w.anchors, &index, &q);
        hits.push(metrics::knn_hit_rate(rs.objects(), &truth, 3));
    }
    assert!(
        hits.value() > 0.6,
        "average 3NN hit rate too low: {}",
        hits.value()
    );
}

/// The system facade produces the same qualitative answers as wiring the
/// modules manually.
#[test]
fn system_facade_end_to_end() {
    let plan = ripq::floorplan::office_building(&Default::default()).unwrap();
    let mut system = IndoorQuerySystem::new(plan, SystemConfig::default(), 5);
    let reader = system.readers()[6];
    let obj = ObjectId::new(3);
    for s in 0..5u64 {
        system.ingest_detections(s, &[(obj, reader.id())]);
    }
    let rq = system
        .register_range(Rect::centered(reader.position(), 10.0, 8.0))
        .unwrap();
    let report = system.evaluate(5);
    assert!(report.range_results[&rq].probability(obj) > 0.5);
}
