//! Differential suite pinning the landmark/ALT distance oracle against
//! plain Dijkstra.
//!
//! The oracle's contract is *bit-identity*: switching
//! [`SystemConfig::distance_backend`] to [`DistanceBackend::Alt`] may
//! change how much of the graph a query settles, but never a single bit
//! of any distance, probability, or transcript. Three layers enforce it:
//!
//! 1. raw point-to-point distances, 0 ULP against
//!    `ShortestPaths::distance_to` over randomized floor plans;
//! 2. the landmark triangle-inequality lower bounds, admissible for
//!    every sampled node pair (the A* exactness precondition);
//! 3. full [`IndoorQuerySystem`] evaluation transcripts — every query
//!    family, at worker counts 1/2/4 — byte-identical across backends,
//!    including a replay of the committed Dijkstra golden fixture.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ripq::core::{
    DistanceBackend, EvaluationReport, IndoorQuerySystem, MetricsSnapshot, QueryId, ResultSet,
    SystemConfig, TimingMode,
};
use ripq::floorplan::{office_building, FloorPlan, FloorPlanBuilder, OfficeParams};
use ripq::geom::{Point2, Rect};
use ripq::graph::{DistanceOracle, GraphPos, NodeId, ShortestPaths, WalkingGraph};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const SEED: u64 = 0x60_1D;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// A graph position pinned to a node (room nodes sit at an edge
/// endpoint, so `edges_at(n)[0]` always carries the node).
fn node_pos(graph: &WalkingGraph, n: NodeId) -> GraphPos {
    let e = graph.edges_at(n)[0];
    let off = graph
        .edge(e)
        .offset_of(n)
        .expect("adjacency lists only hold incident edges");
    GraphPos::new(e, off)
}

/// A uniformly random on-graph position.
fn random_pos(rng: &mut StdRng, graph: &WalkingGraph) -> GraphPos {
    let e = ripq::graph::EdgeId::new(rng.random_range(0..graph.edges().len()) as u32);
    let offset = rng.random_range(0.0..=graph.edge(e).length());
    GraphPos::new(e, offset)
}

/// The floor-plan family the randomized tests sweep: the paper's office
/// generator at several shapes, so landmark geometry, junction degrees
/// and hallway counts all vary.
fn plan_variants() -> Vec<FloorPlan> {
    [
        OfficeParams::default(),
        OfficeParams {
            horizontal_hallways: 2,
            ..OfficeParams::default()
        },
        OfficeParams {
            left_cols: 2,
            right_cols: 5,
            hallway_length: 70.0,
            ..OfficeParams::default()
        },
        OfficeParams {
            horizontal_hallways: 5,
            room_depth: 6.0,
            ..OfficeParams::default()
        },
    ]
    .iter()
    .map(|p| office_building(p).expect("office variant is valid"))
    .collect()
}

#[test]
fn alt_distances_match_dijkstra_to_the_bit_on_randomized_floorplans() {
    let mut rng = StdRng::seed_from_u64(0xA17);
    for (pi, plan) in plan_variants().into_iter().enumerate() {
        let graph = ripq::graph::build_walking_graph(&plan);
        for landmarks in [1, 4, 8] {
            let oracle = DistanceOracle::build(&graph, landmarks);
            for qi in 0..40 {
                let from = random_pos(&mut rng, &graph);
                let to = random_pos(&mut rng, &graph);
                let exact = graph.shortest_paths_from(from).distance_to(&graph, to);
                let alt = oracle.distance(&graph, from, to);
                assert_eq!(
                    exact.to_bits(),
                    alt.to_bits(),
                    "plan {pi}, {landmarks} landmarks, query {qi}: \
                     dijkstra {exact} != alt {alt}"
                );
            }
        }
    }
}

#[test]
fn landmark_lower_bounds_are_admissible() {
    let mut rng = StdRng::seed_from_u64(0x1B);
    for plan in plan_variants() {
        let graph = ripq::graph::build_walking_graph(&plan);
        let oracle = DistanceOracle::build(&graph, 8);
        let landmark_tables: Vec<ShortestPaths> = oracle
            .landmarks()
            .iter()
            .map(|&l| graph.shortest_paths_from(node_pos(&graph, l)))
            .collect();
        for _ in 0..60 {
            let v = NodeId::new(rng.random_range(0..graph.nodes().len()) as u32);
            let t = NodeId::new(rng.random_range(0..graph.nodes().len()) as u32);
            let d = graph
                .shortest_paths_from(node_pos(&graph, v))
                .node_distance(t);
            for (li, sp) in landmark_tables.iter().enumerate() {
                let lb = (sp.node_distance(v) - sp.node_distance(t)).abs();
                // The raw triangle-inequality bound may exceed the true
                // distance by floating-point rounding only; the oracle's
                // deflated heuristic absorbs exactly this margin.
                assert!(
                    lb <= d * (1.0 + 1e-9) + 1e-9,
                    "landmark {li}: lower bound {lb} exceeds true distance {d}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Full-system transcripts (fixture harness mirrors tests/golden.rs).
// ---------------------------------------------------------------------

/// Parses the `hallway` / `room` / `door` line format of
/// `tests/fixtures/mini_plan.txt`.
fn load_plan() -> FloorPlan {
    let text = std::fs::read_to_string(fixture_path("mini_plan.txt")).expect("plan fixture");
    let mut b = FloorPlanBuilder::new();
    let mut halls = Vec::new();
    let mut rooms = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        let num = |i: usize| f[i].parse::<f64>().expect("numeric field");
        match f[0] {
            "hallway" => {
                halls.push(b.add_hallway(Rect::new(num(1), num(2), num(3), num(4)), f[5]));
            }
            "room" => {
                rooms.push(b.add_room(Rect::new(num(1), num(2), num(3), num(4)), f[5]));
            }
            "door" => {
                let room = rooms[f[3].parse::<usize>().expect("room index")];
                let hall = halls[f[4].parse::<usize>().expect("hallway index")];
                b.add_door(Point2::new(num(1), num(2)), room, hall);
            }
            other => panic!("unknown plan directive {other:?}"),
        }
    }
    b.build().expect("fixture plan is valid")
}

struct FixtureRun {
    report: EvaluationReport,
    range_q: QueryId,
    knn_q: QueryId,
    ptknn_q: QueryId,
    pairs_q: QueryId,
    now: u64,
}

/// Feeds `mini_trace.txt` into a system under `config` and evaluates one
/// query of every family.
fn run_fixture(config: SystemConfig) -> FixtureRun {
    let mut sys = IndoorQuerySystem::new(load_plan(), config, SEED);
    let readers: Vec<_> = sys.readers().iter().map(|r| r.id()).collect();

    let text = std::fs::read_to_string(fixture_path("mini_trace.txt")).expect("trace fixture");
    let mut by_second: std::collections::BTreeMap<u64, Vec<(ripq::rfid::ObjectId, _)>> =
        std::collections::BTreeMap::new();
    let mut last = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        let second: u64 = f[0].parse().expect("second");
        let object: u32 = f[1].parse().expect("object");
        let reader: usize = f[2].parse().expect("reader index");
        by_second
            .entry(second)
            .or_default()
            .push((ripq::rfid::ObjectId::new(object), readers[reader]));
        last = last.max(second);
    }
    let now = last + 3;
    for s in 0..=now {
        let det = by_second.remove(&s).unwrap_or_default();
        sys.ingest_detections(s, &det);
    }

    let range_q = sys
        .register_range(Rect::new(2.0, 6.0, 12.0, 5.0))
        .expect("range query");
    let knn_q = sys
        .register_knn(Point2::new(12.0, 9.0), 2)
        .expect("kNN query");
    let ptknn_q = sys
        .register_ptknn(Point2::new(12.0, 9.0), 2, 0.2)
        .expect("PTkNN query");
    let pairs_q = sys
        .register_closest_pairs(2, 4.0)
        .expect("closest-pairs query");
    FixtureRun {
        report: sys.evaluate(now),
        range_q,
        knn_q,
        ptknn_q,
        pairs_q,
        now,
    }
}

/// Renders a result set as stable `kind object bits decimal` lines
/// (same format as tests/golden.rs).
fn render(out: &mut String, kind: &str, rs: &ResultSet) {
    for r in rs.sorted() {
        writeln!(
            out,
            "{kind} {} {:016x} {:.17e}",
            r.object.raw(),
            r.probability.to_bits(),
            r.probability
        )
        .expect("string write");
    }
}

/// Metrics minus the backend-local effort counters: `oracle.*` gauges
/// exist only under ALT, and `spcache.*` legitimately differs because
/// the oracle path never touches the Dijkstra tree cache. Everything
/// else — collector, pf, index deltas, optimizer, spans — must match.
fn strip_backend_local(mut snap: MetricsSnapshot) -> MetricsSnapshot {
    let local = |k: &str| k.starts_with("oracle.") || k.starts_with("spcache.");
    snap.counters.retain(|k, _| !local(k));
    snap.gauges.retain(|k, _| !local(k));
    snap
}

/// The full comparable transcript of one fixture evaluation.
fn transcript(backend: DistanceBackend, parallelism: Option<usize>) -> String {
    let run = run_fixture(SystemConfig {
        reader_count: 6,
        // Pruning ON: the kNN `sᵢ/lᵢ` filter is the oracle's
        // point-to-point hot path and must agree bit-for-bit too.
        prune_candidates: true,
        observability: true,
        timing: TimingMode::Logical,
        distance_backend: backend,
        parallelism,
        ..SystemConfig::default()
    });
    let mut out = String::new();
    let report = &run.report;
    writeln!(out, "candidates_processed {}", report.candidates_processed).unwrap();
    writeln!(out, "objects_known {}", report.objects_known).unwrap();
    render(&mut out, "range", &report.range_results[&run.range_q]);
    render(&mut out, "knn", &report.knn_results[&run.knn_q]);
    render(&mut out, "ptknn", &report.ptknn_results[&run.ptknn_q]);
    for p in &report.closest_pairs_results[&run.pairs_q] {
        writeln!(
            out,
            "pair {} {} {:016x} {:016x}",
            p.a.raw(),
            p.b.raw(),
            p.expected_distance.to_bits(),
            p.within_radius.to_bits()
        )
        .unwrap();
    }
    for (o, level) in &report.object_degradation {
        writeln!(out, "degraded {} {level:?}", o.raw()).unwrap();
    }
    let metrics = report.metrics.clone().expect("observability on");
    out.push_str(&strip_backend_local(metrics).to_json());
    out
}

#[test]
fn evaluation_transcripts_are_identical_across_backends_and_workers() {
    let golden = transcript(DistanceBackend::Dijkstra, None);
    assert!(golden.contains("range "), "fixture produced range answers");
    assert!(golden.contains("knn "), "fixture produced kNN answers");
    for workers in [None, Some(2), Some(4)] {
        let alt = transcript(DistanceBackend::Alt, workers);
        assert_eq!(
            golden, alt,
            "ALT transcript diverged at parallelism {workers:?}"
        );
    }
    // Worker count is also transcript-neutral under the classic backend.
    assert_eq!(golden, transcript(DistanceBackend::Dijkstra, Some(4)));
}

/// The committed Dijkstra golden fixture replayed under ALT: the oracle
/// must reproduce the pinned Algorithm 3/4 outputs byte for byte, not
/// merely agree with a same-process Dijkstra run.
#[test]
fn alt_backend_reproduces_the_committed_golden_fixture() {
    let run = run_fixture(SystemConfig {
        reader_count: 6,
        prune_candidates: false,
        distance_backend: DistanceBackend::Alt,
        ..SystemConfig::default()
    });
    let now = run.now;
    let mut actual = String::new();
    writeln!(
        actual,
        "# Golden Algorithm 3/4 outputs at t={now}, seed {SEED:#x}.\n\
         # Regenerate: RIPQ_REGEN_GOLDEN=1 cargo test --test golden\n\
         # format: <kind> <object> <f64-bits-hex> <decimal>"
    )
    .expect("string write");
    writeln!(
        actual,
        "candidates_processed {}",
        run.report.candidates_processed
    )
    .unwrap();
    render(
        &mut actual,
        "range",
        &run.report.range_results[&run.range_q],
    );
    render(&mut actual, "knn", &run.report.knn_results[&run.knn_q]);

    let expected = std::fs::read_to_string(fixture_path("expected_queries.txt"))
        .expect("golden fixture exists");
    assert_eq!(
        expected, actual,
        "ALT failed to reproduce the committed Dijkstra golden transcript"
    );
}

#[test]
fn oracle_checkpoint_round_trips_through_system_recovery() {
    let dir = std::env::temp_dir().join("ripq_oracle_sys_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let config = SystemConfig {
        reader_count: 6,
        distance_backend: DistanceBackend::Alt,
        ..SystemConfig::default()
    };
    let mut sys = IndoorQuerySystem::new(load_plan(), config, SEED);
    let reader = sys.readers()[0].id();
    for s in 0..5 {
        sys.ingest_detections(s, &[(ripq::rfid::ObjectId::new(0), reader)]);
    }
    let q = sys.register_knn(Point2::new(12.0, 9.0), 1).expect("knn");
    // Checkpoint *before* evaluating, so both lives draw the same master
    // RNG pass seed when they evaluate. Under ALT, checkpoint_now forces
    // the lazy oracle build and writes oracle.ckpt alongside system.ckpt.
    sys.set_checkpoint_dir(&dir);
    sys.checkpoint_now().expect("checkpoint");
    assert!(
        dir.join("oracle.ckpt").exists(),
        "ALT checkpoint writes the oracle snapshot"
    );
    let fingerprint = sys
        .distance_oracle()
        .expect("oracle built by checkpoint")
        .fingerprint();
    let first = sys.evaluate(5);

    // A fresh system recovers the oracle from disk instead of rebuilding:
    // it is present immediately after recover, before any evaluation.
    let mut recovered = IndoorQuerySystem::new(load_plan(), config, SEED);
    recovered.recover(&dir).expect("recovery succeeds");
    let restored = recovered
        .distance_oracle()
        .expect("oracle restored from oracle.ckpt");
    assert_eq!(restored.fingerprint(), fingerprint);
    let q2 = recovered
        .register_knn(Point2::new(12.0, 9.0), 1)
        .expect("knn");
    let replayed = recovered.evaluate(5);
    let bits = |rs: &ResultSet| -> Vec<(u32, u64)> {
        rs.sorted()
            .iter()
            .map(|r| (r.object.raw(), r.probability.to_bits()))
            .collect()
    };
    assert_eq!(
        bits(&first.knn_results[&q]),
        bits(&replayed.knn_results[&q2]),
        "recovered oracle must answer identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
