//! Coverage of API surface corners that unit tests in the owning crates
//! exercise only incidentally: accessors, conversions, reporting types.

use ripq::core::{IndoorQuerySystem, SystemConfig};
use ripq::floorplan::{office_building, OfficeParams};
use ripq::geom::{Point2, Rect, Segment};
use ripq::graph::{build_walking_graph, GraphPos, NodeKind};
use ripq::rfid::ObjectId;

#[test]
fn geom_conveniences() {
    // Point conversions and constants.
    let p: Point2 = (3.0, 4.0).into();
    assert_eq!(p, Point2::new(3.0, 4.0));
    assert_eq!(Point2::ORIGIN.norm(), 0.0);

    // Centered rectangles.
    let r = Rect::centered(Point2::new(5.0, 5.0), 4.0, 2.0);
    assert_eq!(r.min(), Point2::new(3.0, 4.0));
    assert_eq!(r.max(), Point2::new(7.0, 6.0));
    assert_eq!(r.center(), Point2::new(5.0, 5.0));

    // Segment helpers.
    let s = Segment::new(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
    assert_eq!(s.reversed().a, Point2::new(10.0, 0.0));
    assert_eq!(s.midpoint(), Point2::new(5.0, 0.0));
    let bb = s.bounding_box();
    assert!(bb.contains(Point2::new(5.0, 0.0)));
    assert_eq!(bb.area(), 0.0);
    assert_eq!(s.point_at_t(0.25), Point2::new(2.5, 0.0));
}

#[test]
fn graph_position_helpers() {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let g = build_walking_graph(&plan);
    let e = &g.edges()[0];

    // clamp_pos clamps out-of-range offsets.
    let over = GraphPos::new(e.id, e.length() + 5.0);
    let clamped = g.clamp_pos(over);
    assert!((clamped.offset - e.length()).abs() < 1e-12);
    let under = GraphPos::new(e.id, -3.0);
    assert_eq!(g.clamp_pos(under).offset, 0.0);

    // node_at_pos identifies endpoints within tolerance.
    assert_eq!(g.node_at_pos(GraphPos::new(e.id, 0.0), 1e-9), Some(e.a));
    assert_eq!(
        g.node_at_pos(GraphPos::new(e.id, e.length()), 1e-9),
        Some(e.b)
    );
    assert_eq!(
        g.node_at_pos(GraphPos::new(e.id, e.length() / 2.0), 1e-9),
        None
    );

    // Degree / accessor consistency.
    for n in g.nodes().iter().take(10) {
        assert_eq!(g.degree(n.id), g.edges_at(n.id).len());
        for &eid in g.edges_at(n.id) {
            assert!(g.edge(eid).other_end(n.id).is_some());
        }
    }

    // Room node iteration covers all rooms.
    assert_eq!(g.room_node_ids().count(), plan.rooms().len());
    for n in g.room_node_ids() {
        assert!(matches!(g.node(n).kind, NodeKind::Room(_)));
    }
}

#[test]
fn evaluation_timings_are_populated() {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let mut sys = IndoorQuerySystem::new(plan, SystemConfig::default(), 3);
    let d = sys.readers()[0];
    for s in 0..4u64 {
        sys.ingest_detections(s, &[(ObjectId::new(0), d.id())]);
    }
    sys.register_range(Rect::centered(d.position(), 10.0, 6.0))
        .unwrap();
    let report = sys.evaluate(4);
    let t = report.timings;
    assert!(t.total >= t.preprocessing);
    assert!(t.total >= t.pruning);
    assert!(t.total >= t.evaluation);
    assert!(t.total.as_nanos() > 0);
    // Preprocessing dominates (it runs the particle filter).
    assert!(t.preprocessing.as_nanos() > 0);
}

#[test]
fn hallway_and_plan_accessors() {
    let plan = office_building(&OfficeParams::default()).unwrap();
    for h in plan.hallways() {
        assert!(!h.name().is_empty());
        assert!(h.long_length() >= h.cross_width());
        // Centerline endpoints are inside the footprint.
        let cl = h.centerline();
        assert!(h.footprint().contains(cl.a));
        assert!(h.footprint().contains(cl.b));
    }
    for d in plan.doors() {
        // Door accessors round-trip through the plan.
        assert_eq!(plan.door(d.id()).id(), d.id());
        assert!(plan.room(d.room()).doors().contains(&d.id()));
    }
    // doors_of_hallway partitions all doors.
    let total: usize = plan
        .hallways()
        .iter()
        .map(|h| plan.doors_of_hallway(h.id()).count())
        .sum();
    assert_eq!(total, plan.doors().len());
}

#[test]
fn result_set_iteration() {
    use ripq::core::ResultSet;
    let rs: ResultSet = [(ObjectId::new(1), 0.25), (ObjectId::new(2), 0.5)]
        .into_iter()
        .collect();
    let mut objs: Vec<_> = rs.objects().collect();
    objs.sort();
    assert_eq!(objs, vec![ObjectId::new(1), ObjectId::new(2)]);
    let total: f64 = rs.iter().map(|(_, p)| p).sum();
    assert!((total - 0.75).abs() < 1e-12);
}

#[test]
fn cache_stats_zero_state() {
    use ripq::pf::ParticleCache;
    let c = ParticleCache::new();
    assert!(c.is_empty());
    assert_eq!(c.len(), 0);
    assert_eq!(c.stats().hit_rate(), 0.0);
}

#[test]
fn office_params_scaling_invariants() {
    for (lc, rc, hh) in [(2u32, 2u32, 2u32), (4, 3, 4)] {
        let p = OfficeParams {
            left_cols: lc,
            right_cols: rc,
            horizontal_hallways: hh,
            ..Default::default()
        };
        assert_eq!(p.room_count(), (lc + rc) * 2 * hh);
        assert_eq!(p.hallway_count(), hh + 1);
        let plan = office_building(&p).expect("scaled plan valid");
        assert_eq!(plan.rooms().len() as u32, p.room_count());
        let g = build_walking_graph(&plan);
        assert!(g.is_connected());
    }
}
