//! Historical queries: "where was everyone at second t?" — the §4.1
//! extension, driven through the full particle-filter pipeline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ripq::core::{evaluate_range, KnnQuery, QueryId};
use ripq::pf::{ParticlePreprocessor, PreprocessorConfig};
use ripq::rfid::{HistoryCollector, ReadingStore};
use ripq::sim::{ExperimentParams, GroundTruth, ReadingGenerator, SimWorld, TraceGenerator};

#[test]
fn historical_inference_reflects_only_past_readings() {
    let params = ExperimentParams::smoke();
    let w = SimWorld::build(&params);
    let mut rng_trace = StdRng::seed_from_u64(31);
    let mut rng_sense = StdRng::seed_from_u64(32);
    let traces =
        TraceGenerator::new(6.0).generate(&mut rng_trace, &w.graph, w.plan.rooms().len(), 10, 150);
    let gen = ReadingGenerator::new(&w.graph, &w.readers, params.sensing);
    let mut history = HistoryCollector::new();
    for s in 0..=150u64 {
        let det = gen.detections_at(&mut rng_sense, &traces, s);
        history.ingest_second(s, &det);
    }
    let pre = ParticlePreprocessor::new(
        &w.graph,
        &w.anchors,
        &w.readers,
        PreprocessorConfig::default(),
    );

    // Evaluate "where was o at t = 80?" from the full history.
    let t = 80u64;
    let view = history.view_at(t);
    let objects = view.object_ids();
    assert!(!objects.is_empty());
    let mut rng_pf = StdRng::seed_from_u64(33);
    let index = pre.process(&mut rng_pf, &view, &objects, t, None);

    // Mass must be consistent with the *then-current* positions: for each
    // processed object, some probability within plausible reach of the
    // true position at t.
    let mut covered = 0usize;
    let mut total = 0usize;
    for trace in &traces {
        let Some(dist) = index.distribution(&trace.object) else {
            continue;
        };
        total += 1;
        let truth = trace.point_at(&w.graph, t);
        let near: f64 = dist
            .iter()
            .filter(|(a, _)| w.anchors.anchor(*a).point.distance(truth) < 8.0)
            .map(|&(_, p)| p)
            .sum();
        if near > 0.2 {
            covered += 1;
        }
    }
    assert!(total >= 5, "most objects have history by t=80");
    assert!(
        covered * 10 >= total * 6,
        "historical inference should localize most objects: {covered}/{total}"
    );
}

#[test]
fn historical_views_at_different_instants_differ() {
    let params = ExperimentParams::smoke();
    let w = SimWorld::build(&params);
    let mut rng_trace = StdRng::seed_from_u64(41);
    let mut rng_sense = StdRng::seed_from_u64(42);
    let traces =
        TraceGenerator::new(4.0).generate(&mut rng_trace, &w.graph, w.plan.rooms().len(), 5, 150);
    let gen = ReadingGenerator::new(&w.graph, &w.readers, params.sensing);
    let mut history = HistoryCollector::new();
    for s in 0..=150u64 {
        let det = gen.detections_at(&mut rng_sense, &traces, s);
        history.ingest_second(s, &det);
    }
    // A walker's last detection at t=60 and t=140 generally differs.
    let mut any_different = false;
    for trace in &traces {
        let v1 = history.view_at(60);
        let v2 = history.view_at(140);
        let d1 = v1.last_detection(trace.object);
        let d2 = v2.last_detection(trace.object);
        if d1.is_some() && d1 != d2 {
            any_different = true;
        }
        // And views never see the future.
        if let Some((_, t_last)) = d1 {
            assert!(t_last <= 60);
        }
    }
    assert!(any_different, "moving objects change readings over 80 s");
}

#[test]
fn historical_range_and_knn_queries_run() {
    let params = ExperimentParams::smoke();
    let w = SimWorld::build(&params);
    let mut rng_trace = StdRng::seed_from_u64(51);
    let mut rng_sense = StdRng::seed_from_u64(52);
    let traces =
        TraceGenerator::new(6.0).generate(&mut rng_trace, &w.graph, w.plan.rooms().len(), 12, 120);
    let gen = ReadingGenerator::new(&w.graph, &w.readers, params.sensing);
    let gt = GroundTruth::new(&w.graph, &traces);
    let mut history = HistoryCollector::new();
    for s in 0..=120u64 {
        let det = gen.detections_at(&mut rng_sense, &traces, s);
        history.ingest_second(s, &det);
    }
    let pre = ParticlePreprocessor::new(
        &w.graph,
        &w.anchors,
        &w.readers,
        PreprocessorConfig::default(),
    );
    for t in [60u64, 90, 120] {
        let view = history.view_at(t);
        let objects = view.object_ids();
        let mut rng = StdRng::seed_from_u64(53 + t);
        let index = pre.process(&mut rng, &view, &objects, t, None);
        // Historical range query over the whole building finds everyone.
        let rs = evaluate_range(&w.plan, &w.anchors, &index, &w.plan.bounds());
        assert_eq!(rs.len(), index.object_count());
        // Historical kNN runs and returns ≥ k objects.
        let q = KnnQuery::new(QueryId::new(0), w.plan.bounds().center(), 2).unwrap();
        let knn = ripq::core::evaluate_knn(&w.graph, &w.anchors, &index, &q);
        assert!(knn.len() >= 2.min(index.object_count()));
        // Sanity: the ground truth at that instant is defined.
        let _ = gt.knn(w.plan.bounds().center(), 2, t);
    }
}
