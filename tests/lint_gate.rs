//! Tier-1 gate: the real workspace must stay lint-clean.
//!
//! Runs the `cargo xtask lint` engine in-process against this repository
//! and fails on any unsuppressed violation or stale allowlist entry, so
//! a regression shows up in `cargo test` even when the CI lint job is
//! skipped.

use xtask::lint;

#[test]
fn workspace_has_no_unsuppressed_lint_violations() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint::run(root).expect("lint pass runs");
    let active: Vec<String> = report
        .active()
        .map(|d| {
            format!(
                "{}:{}:{} [{}/{}] {}",
                d.file, d.line, d.col, d.rule_id, d.rule_name, d.message
            )
        })
        .collect();
    assert!(
        active.is_empty(),
        "unsuppressed lint violations:\n{}",
        active.join("\n")
    );
    let stale: Vec<String> = report
        .stale_allowlist
        .iter()
        .map(|e| format!("({}, {})", e.rule, e.path_prefix))
        .collect();
    assert!(
        stale.is_empty(),
        "stale allowlist entries (prune them): {}",
        stale.join(", ")
    );
    assert!(report.files_scanned > 50, "scan actually covered the tree");
}
