//! Reproducibility: the whole stack is a pure function of its seeds.

use ripq::core::{IndoorQuerySystem, SystemConfig, TimingMode};
use ripq::floorplan::{office_building, OfficeParams};
use ripq::geom::Rect;
use ripq::rfid::ObjectId;
use ripq::sim::{Experiment, ExperimentParams};

#[test]
fn experiments_reproduce_bit_for_bit() {
    let params = ExperimentParams::smoke();
    let a = Experiment::new(params).run();
    let b = Experiment::new(params).run();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = Experiment::new(ExperimentParams::smoke()).run();
    let b = Experiment::new(ExperimentParams {
        seed: 12345,
        ..ExperimentParams::smoke()
    })
    .run();
    assert_ne!(a, b, "different seeds should yield different metrics");
}

#[test]
fn system_facade_reproduces_under_fixed_seed() {
    let run = || {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut sys = IndoorQuerySystem::new(plan, SystemConfig::default(), 77);
        let r0 = sys.readers()[0];
        let r1 = sys.readers()[1];
        let o = ObjectId::new(0);
        for s in 0..6u64 {
            sys.ingest_detections(s, &[(o, r0.id())]);
        }
        for s in 6..14u64 {
            let _ = r1;
            sys.ingest_detections(s, &[]);
        }
        let q = sys
            .register_range(Rect::centered(r0.position(), 14.0, 10.0))
            .unwrap();
        let report = sys.evaluate(14);
        report.range_results[&q].probability(o)
    };
    let p1 = run();
    let p2 = run();
    assert_eq!(p1, p2);
}

/// Runs a fixed workload through the system facade under the given
/// config and returns its evaluation report.
fn evaluate_with_config(config: SystemConfig) -> ripq::core::EvaluationReport {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let mut sys = IndoorQuerySystem::new(plan, config, 4242);
    let reader_ids: Vec<_> = sys.readers().iter().map(|r| r.id()).collect();
    // 12 objects pinging a rotating subset of readers for 16 seconds.
    for s in 0..16u64 {
        let det: Vec<_> = (0..12u32)
            .map(|i| {
                (
                    ObjectId::new(i),
                    reader_ids[((i + s as u32) % reader_ids.len() as u32) as usize],
                )
            })
            .collect();
        sys.ingest_detections(s, &det);
    }
    let center = sys.plan().bounds().center();
    sys.register_range(Rect::centered(center, 16.0, 12.0))
        .unwrap();
    sys.register_knn(center, 3).unwrap();
    sys.register_ptknn(center, 3, 0.2).unwrap();
    sys.evaluate(16)
}

/// Runs a fixed workload through the system facade at the given
/// preprocessing parallelism and returns its evaluation report.
fn evaluate_with_parallelism(parallelism: Option<usize>) -> ripq::core::EvaluationReport {
    evaluate_with_config(SystemConfig {
        parallelism,
        ..SystemConfig::default()
    })
}

#[test]
fn parallel_evaluation_matches_sequential_bit_for_bit() {
    let baseline = evaluate_with_parallelism(None);
    assert!(
        baseline.candidates_processed > 0,
        "workload must be non-trivial"
    );
    for workers in [1usize, 2, 4] {
        let parallel = evaluate_with_parallelism(Some(workers));
        // Query answers: exact f64 equality, not tolerance — the parallel
        // path must replay the sequential RNG streams verbatim.
        assert_eq!(
            baseline.range_results, parallel.range_results,
            "range results diverge at {workers} workers"
        );
        assert_eq!(
            baseline.knn_results, parallel.knn_results,
            "kNN results diverge at {workers} workers"
        );
        assert_eq!(
            baseline.ptknn_results, parallel.ptknn_results,
            "PTkNN results diverge at {workers} workers"
        );
        assert_eq!(baseline.candidates_processed, parallel.candidates_processed);
        // The APtoObjHT itself: every per-object distribution identical.
        assert_eq!(baseline.index.object_count(), parallel.index.object_count());
        for o in baseline.index.objects() {
            assert_eq!(
                baseline.index.distribution(o),
                parallel.index.distribution(o),
                "index distribution for {o:?} diverges at {workers} workers"
            );
        }
    }
}

#[test]
fn parallel_experiment_matches_sequential_end_to_end() {
    let sequential = Experiment::new(ExperimentParams::smoke()).run();
    let parallel = Experiment::new(ExperimentParams {
        parallelism: Some(4),
        ..ExperimentParams::smoke()
    })
    .run();
    assert_eq!(sequential, parallel);
}

/// Runs the shared workload with observability on and logical timing and
/// returns the rendered metrics snapshot.
fn metrics_json_with_parallelism(parallelism: Option<usize>) -> String {
    let report = evaluate_with_config(SystemConfig {
        parallelism,
        timing: TimingMode::Logical,
        observability: true,
        ..SystemConfig::default()
    });
    report
        .metrics
        .expect("observability on yields a snapshot")
        .to_json()
}

/// Under `TimingMode::Logical` the metrics snapshot — span durations
/// included — is part of the determinism contract: byte-identical JSON
/// across repeated runs *and* across preprocessing worker counts.
#[test]
fn metrics_snapshot_json_is_byte_identical_across_runs_and_workers() {
    let baseline = metrics_json_with_parallelism(None);
    assert!(
        baseline.contains("\"pf."),
        "snapshot must cover the particle-filter stage:\n{baseline}"
    );
    assert_eq!(
        baseline,
        metrics_json_with_parallelism(None),
        "sequential rerun drifted"
    );
    for workers in [1usize, 2, 4] {
        for run in 0..2 {
            assert_eq!(
                baseline,
                metrics_json_with_parallelism(Some(workers)),
                "snapshot JSON diverges at {workers} workers (run {run})"
            );
        }
    }
}

#[test]
fn floor_plan_and_graph_construction_deterministic() {
    let p1 = office_building(&OfficeParams::default()).unwrap();
    let p2 = office_building(&OfficeParams::default()).unwrap();
    let g1 = ripq::graph::build_walking_graph(&p1);
    let g2 = ripq::graph::build_walking_graph(&p2);
    assert_eq!(g1.nodes().len(), g2.nodes().len());
    assert_eq!(g1.edges().len(), g2.edges().len());
    for (a, b) in g1.nodes().iter().zip(g2.nodes()) {
        assert_eq!(a.position, b.position);
        assert_eq!(a.kind, b.kind);
    }
    let a1 = ripq::graph::AnchorSet::generate(&g1, &p1, 1.0);
    let a2 = ripq::graph::AnchorSet::generate(&g2, &p2, 1.0);
    assert_eq!(a1.anchors().len(), a2.anchors().len());
}
