//! Reproducibility: the whole stack is a pure function of its seeds.

use ripq::core::{IndoorQuerySystem, SystemConfig};
use ripq::floorplan::{office_building, OfficeParams};
use ripq::geom::Rect;
use ripq::rfid::ObjectId;
use ripq::sim::{Experiment, ExperimentParams};

#[test]
fn experiments_reproduce_bit_for_bit() {
    let params = ExperimentParams::smoke();
    let a = Experiment::new(params).run();
    let b = Experiment::new(params).run();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = Experiment::new(ExperimentParams::smoke()).run();
    let b = Experiment::new(ExperimentParams {
        seed: 12345,
        ..ExperimentParams::smoke()
    })
    .run();
    assert_ne!(a, b, "different seeds should yield different metrics");
}

#[test]
fn system_facade_reproduces_under_fixed_seed() {
    let run = || {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut sys = IndoorQuerySystem::new(plan, SystemConfig::default(), 77);
        let r0 = sys.readers()[0];
        let r1 = sys.readers()[1];
        let o = ObjectId::new(0);
        for s in 0..6u64 {
            sys.ingest_detections(s, &[(o, r0.id())]);
        }
        for s in 6..14u64 {
            let _ = r1;
            sys.ingest_detections(s, &[]);
        }
        let q = sys
            .register_range(Rect::centered(r0.position(), 14.0, 10.0))
            .unwrap();
        let report = sys.evaluate(14);
        report.range_results[&q].probability(o)
    };
    let p1 = run();
    let p2 = run();
    assert_eq!(p1, p2);
}

#[test]
fn floor_plan_and_graph_construction_deterministic() {
    let p1 = office_building(&OfficeParams::default()).unwrap();
    let p2 = office_building(&OfficeParams::default()).unwrap();
    let g1 = ripq::graph::build_walking_graph(&p1);
    let g2 = ripq::graph::build_walking_graph(&p2);
    assert_eq!(g1.nodes().len(), g2.nodes().len());
    assert_eq!(g1.edges().len(), g2.edges().len());
    for (a, b) in g1.nodes().iter().zip(g2.nodes()) {
        assert_eq!(a.position, b.position);
        assert_eq!(a.kind, b.kind);
    }
    let a1 = ripq::graph::AnchorSet::generate(&g1, &p1, 1.0);
    let a2 = ripq::graph::AnchorSet::generate(&g2, &p2, 1.0);
    assert_eq!(a1.anchors().len(), a2.anchors().len());
}
