//! Streaming-server transcript replay: the determinism headline and the
//! crash-recovery continuity contract.
//!
//! * Replaying a recorded transcript produces **byte-identical** response
//!   lines and metrics JSON across repeated runs and across worker
//!   counts 1/2/4.
//! * The canonical fixture pair (`tests/fixtures/server_transcript.txt`
//!   → `tests/fixtures/expected_server_deltas.txt`) pins the full
//!   response stream. Regenerate after an intentional change with
//!
//!   ```text
//!   RIPQ_REGEN_GOLDEN=1 cargo test --test server_stream
//!   ```
//!
//! * Killing the server mid-transcript and recovering from
//!   `system.ckpt` + `server.ckpt` resumes the stream byte-equal to the
//!   uninterrupted golden's suffix.

use ripq::floorplan::{office_building, OfficeParams};
use ripq::server::{encode_frame, ServerConfig, ServerCore, ServerRecovery};
use ripq::sim::transcript::{record_transcript, Transcript, TranscriptSpec};
use std::path::{Path, PathBuf};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ripq_server_stream_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The spec behind the committed fixtures. `metrics_frame` is off so the
/// recovery test can demand byte-equality of the whole resumed suffix
/// (restored metrics counters legitimately encode a different history).
fn fixture_spec() -> TranscriptSpec {
    TranscriptSpec {
        seed: 0x51E9,
        objects: 8,
        seconds: 60,
        tick_every: 10,
        range_subs: 2,
        knn_subs: 1,
        checkpoint_after: Some(30),
        metrics_frame: false,
        tick_budget: None,
    }
}

fn fresh_core(workers: Option<usize>) -> ServerCore {
    let plan = office_building(&OfficeParams::default()).expect("default office plan");
    ServerCore::new(
        plan,
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
}

/// Replays all frames through a core, returning (response lines, final
/// metrics JSON).
fn replay(
    frames: &[String],
    workers: Option<usize>,
    checkpoint_dir: Option<&Path>,
) -> (Vec<String>, String) {
    let mut core = fresh_core(workers);
    if let Some(dir) = checkpoint_dir {
        core.set_checkpoint_dir(dir);
    }
    let mut lines = Vec::new();
    for frame in frames {
        lines.extend(core.handle_frame(frame.as_bytes()));
        if core.is_shutdown() {
            break;
        }
    }
    let metrics = core.metrics_json();
    (lines, metrics)
}

/// The determinism headline, enforced at tier 1: byte-identical delta
/// output and metrics snapshots across repeated runs and worker counts
/// 1, 2 and 4.
#[test]
fn transcript_replay_is_byte_identical_across_runs_and_workers() {
    let transcript = record_transcript(&TranscriptSpec {
        objects: 6,
        seconds: 40,
        checkpoint_after: None,
        ..TranscriptSpec::default()
    });
    let (base_lines, base_metrics) = replay(&transcript.frames, Some(1), None);
    assert!(
        base_lines.iter().any(|l| l.starts_with("{\"delta\":")),
        "scenario must produce deltas"
    );
    assert!(base_lines
        .iter()
        .any(|l| l.starts_with("{\"counters\"") || l.contains("\"counters\"")));
    for workers in [Some(1), Some(2), Some(4)] {
        for run in 0..2 {
            let (lines, metrics) = replay(&transcript.frames, workers, None);
            assert_eq!(
                lines, base_lines,
                "run {run} with workers {workers:?} diverged"
            );
            assert_eq!(metrics, base_metrics, "metrics diverged ({workers:?})");
        }
    }
}

/// Feeding the same transcript as a framed byte stream (through the
/// embedded decoder, in awkward chunk sizes) is the same computation as
/// frame-at-a-time replay.
#[test]
fn framed_byte_stream_matches_frame_replay() {
    let transcript = record_transcript(&TranscriptSpec {
        objects: 5,
        seconds: 30,
        checkpoint_after: None,
        ..TranscriptSpec::default()
    });
    let (expected, _) = replay(&transcript.frames, None, None);
    let mut wire = Vec::new();
    for payload in transcript.payloads() {
        wire.extend_from_slice(&encode_frame(&payload));
    }
    let mut core = fresh_core(None);
    let mut lines = Vec::new();
    for chunk in wire.chunks(257) {
        lines.extend(core.ingest_bytes(chunk));
    }
    lines.extend(core.finish_input());
    assert_eq!(lines, expected);
}

/// The committed transcript fixture replays to the committed golden,
/// byte for byte.
#[test]
fn golden_fixture_replay() {
    let transcript_path = fixture_path("server_transcript.txt");
    let golden_path = fixture_path("expected_server_deltas.txt");
    let regen = std::env::var_os("RIPQ_REGEN_GOLDEN").is_some();

    let transcript = if regen {
        let t = record_transcript(&fixture_spec());
        t.save(&transcript_path).expect("write transcript fixture");
        eprintln!("regenerated {}", transcript_path.display());
        t
    } else {
        Transcript::load(&transcript_path)
            .expect("missing transcript fixture; run with RIPQ_REGEN_GOLDEN=1 to create it")
    };

    let dir = temp_dir("golden");
    let (lines, _) = replay(&transcript.frames, None, Some(&dir));
    let mut actual = lines.join("\n");
    actual.push('\n');

    if regen {
        std::fs::write(&golden_path, &actual).expect("write golden fixture");
        eprintln!("regenerated {}", golden_path.display());
    } else {
        let expected = std::fs::read_to_string(&golden_path)
            .expect("missing golden fixture; run with RIPQ_REGEN_GOLDEN=1 to create it");
        assert_eq!(
            expected, actual,
            "server response stream drifted from the golden fixture; if \
             intentional, regenerate with RIPQ_REGEN_GOLDEN=1 cargo test --test server_stream"
        );
    }
    assert!(
        lines.iter().any(|l| l.starts_with("{\"delta\":")),
        "golden scenario must exercise deltas"
    );
    assert!(
        lines.iter().any(|l| l == "{\"ok\":\"checkpoint\"}"),
        "golden scenario must checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill the server mid-transcript (after the checkpoint), recover a
/// fresh instance from `system.ckpt` + `server.ckpt`, replay the rest:
/// the resumed stream must be byte-equal to the uninterrupted golden
/// from the checkpoint's line offset on.
#[test]
fn crash_recovery_resumes_the_golden_stream() {
    if std::env::var_os("RIPQ_REGEN_GOLDEN").is_some() {
        // Fixtures are being rewritten by `golden_fixture_replay` in
        // this same run; test order is not deterministic.
        return;
    }
    let transcript = Transcript::load(&fixture_path("server_transcript.txt"))
        .expect("transcript fixture (regenerate with RIPQ_REGEN_GOLDEN=1)");
    let golden = std::fs::read_to_string(fixture_path("expected_server_deltas.txt"))
        .expect("golden fixture (regenerate with RIPQ_REGEN_GOLDEN=1)");
    let golden_lines: Vec<&str> = golden.lines().collect();

    let checkpoint_frame = transcript
        .frames
        .iter()
        .position(|f| f == "{\"op\":\"checkpoint\"}")
        .expect("fixture contains a checkpoint frame");
    // Die a few frames past the checkpoint — mid-transcript, no shutdown.
    let kill_at = (checkpoint_frame + 4).min(transcript.frames.len() - 2);

    let dir = temp_dir("recovery");
    let mut life1 = fresh_core(None);
    life1.set_checkpoint_dir(&dir);
    let mut life1_lines = Vec::new();
    for frame in &transcript.frames[..kill_at] {
        life1_lines.extend(life1.handle_frame(frame.as_bytes()));
    }
    assert!(!life1.is_shutdown(), "must die before the shutdown frame");
    // Sanity: the first life tracked the golden exactly while it lived.
    assert_eq!(
        life1_lines,
        golden_lines[..life1_lines.len()]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
    );
    drop(life1); // the crash

    let mut life2 = fresh_core(None);
    let outcome = life2.recover(&dir).expect("recovery succeeds");
    let ServerRecovery::Resumed {
        skip_frames,
        lines_emitted,
    } = outcome
    else {
        panic!("expected Resumed, got {outcome:?}");
    };
    assert!(skip_frames > 0 && (skip_frames as usize) <= kill_at);
    assert!(lines_emitted > 0 && (lines_emitted as usize) <= life1_lines.len());

    let mut resumed = Vec::new();
    for frame in &transcript.frames[skip_frames as usize..] {
        resumed.extend(life2.handle_frame(frame.as_bytes()));
        if life2.is_shutdown() {
            break;
        }
    }
    let expected_suffix: Vec<String> = golden_lines[lines_emitted as usize..]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(
        resumed, expected_suffix,
        "resumed stream must continue the golden byte-for-byte"
    );
    assert!(life2.is_shutdown());
    assert_eq!(
        life2.lines_emitted() as usize,
        golden_lines.len(),
        "combined lives emit exactly the uninterrupted stream"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A damaged sidecar is quarantined, not trusted: recovery reports it
/// and a fresh cold-started server replays the whole transcript to the
/// same golden.
#[test]
fn damaged_sidecar_is_quarantined_and_cold_start_matches_golden() {
    if std::env::var_os("RIPQ_REGEN_GOLDEN").is_some() {
        return;
    }
    let transcript =
        Transcript::load(&fixture_path("server_transcript.txt")).expect("transcript fixture");
    let golden = std::fs::read_to_string(fixture_path("expected_server_deltas.txt"))
        .expect("golden fixture");

    let dir = temp_dir("quarantine");
    let mut life1 = fresh_core(None);
    life1.set_checkpoint_dir(&dir);
    for frame in &transcript.frames[..transcript.frames.len() - 1] {
        life1.handle_frame(frame.as_bytes());
    }
    drop(life1);
    // Flip a byte near the end of the sidecar.
    let sidecar = dir.join("server.ckpt");
    let mut bytes = std::fs::read(&sidecar).expect("sidecar written");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&sidecar, &bytes).expect("corrupt sidecar");

    let mut life2 = fresh_core(None);
    match life2.recover(&dir).expect("recovery handles damage") {
        ServerRecovery::Quarantined { path } => {
            assert!(path.to_string_lossy().contains("corrupt"));
            assert!(path.exists());
        }
        other => panic!("expected Quarantined, got {other:?}"),
    }
    // Per the contract, a quarantined core is discarded; cold start.
    let (lines, _) = replay(&transcript.frames, None, Some(&temp_dir("quarantine2")));
    let mut actual = lines.join("\n");
    actual.push('\n');
    assert_eq!(actual, golden);
    let _ = std::fs::remove_dir_all(&dir);
}
