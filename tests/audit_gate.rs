//! Tier-1 gate: the real workspace must stay audit-clean.
//!
//! Runs the `cargo xtask audit` engine in-process against this
//! repository — layering DAG (A1), metrics-registry drift (A2),
//! determinism taint (A3), panic-surface ratchet (A4) — and fails on any
//! unsuppressed error, including drift of the generated `docs/METRICS.md`
//! (strict `--check` semantics). Also pins the determinism contract the
//! audit's own outputs carry: two passes over the same tree must render
//! byte-identical JSON and SARIF.

use xtask::audit::{self, AuditOptions};

#[test]
fn workspace_has_no_unsuppressed_audit_findings() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = audit::run(root, AuditOptions { check: true }).expect("audit pass runs");
    let failures: Vec<String> = report
        .gate_failures()
        .map(|f| {
            format!(
                "{}:{}:{} [{}/{}] {}",
                f.file,
                f.line,
                f.col,
                f.analysis.id(),
                f.analysis.name(),
                f.message
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "unsuppressed audit findings:\n{}",
        failures.join("\n")
    );
    assert!(report.files_scanned > 50, "scan actually covered the tree");
    assert!(report.crates_scanned >= 13, "all workspace crates scanned");
}

#[test]
fn audit_outputs_are_byte_deterministic() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let a = audit::run(root, AuditOptions::default()).expect("audit pass runs");
    let b = audit::run(root, AuditOptions::default()).expect("audit pass runs");
    assert_eq!(
        a.render_json(),
        b.render_json(),
        "JSON must be byte-identical"
    );
    assert_eq!(
        a.render_sarif(),
        b.render_sarif(),
        "SARIF must be byte-identical"
    );
}
