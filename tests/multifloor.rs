//! End-to-end over a three-floor building: walking graph, readers,
//! traces, particle filtering and queries all operate on the multi-floor
//! plan unchanged, and stairs carry real walking cost.

use ripq::floorplan::{multi_floor_office, MultiFloorParams, RoomId};
use ripq::graph::build_walking_graph;
use ripq::sim::{Experiment, ExperimentParams, SimWorld};

#[test]
fn multi_floor_graph_connected_and_stairs_cost_distance() {
    let p = MultiFloorParams::default();
    let plan = multi_floor_office(&p).unwrap();
    let g = build_walking_graph(&plan);
    assert!(g.is_connected(), "stairwells join the floors");

    // Same (x, y-within-floor) room on floors 0 and 1: the walking
    // distance must route through the stairwell and exceed the distance
    // to the room's same-floor mirror neighbor.
    let r0 = plan.room(RoomId::new(0));
    let r_up = plan.room(RoomId::new(p.floor.room_count()));
    assert_eq!(
        r0.footprint().width(),
        r_up.footprint().width(),
        "floor copies are congruent"
    );
    let a = g.project(r0.center());
    let b = g.project(r_up.center());
    let inter_floor = g.network_distance(a, b);
    assert!(inter_floor.is_finite());
    // It must at least cover the vertical pitch (the unrolled gap).
    assert!(
        inter_floor >= p.pitch(),
        "inter-floor distance {inter_floor} < pitch {}",
        p.pitch()
    );

    // Same-floor far room is cheaper than the equivalent journey upstairs.
    let r_far = plan.room(RoomId::new(29));
    let same_floor = g.network_distance(a, g.project(r_far.center()));
    assert!(same_floor < inter_floor + 1e-9);
}

#[test]
fn accuracy_experiment_runs_on_three_floors() {
    // More readers for three floors (19 per floor worth of hallway, scaled
    // down for test runtime).
    let params = ExperimentParams {
        reader_count: 45,
        num_objects: 30,
        duration: 180,
        warmup: 60,
        eval_timestamps: 4,
        range_queries_per_timestamp: 20,
        knn_query_points: 6,
        ..Default::default()
    };
    let plan = multi_floor_office(&MultiFloorParams::default()).unwrap();
    let world = SimWorld::build_with_plan(plan, &params);
    let report = Experiment::with_world(params, world).run();
    assert!(report.range_queries_evaluated > 0);
    assert!(report.knn_queries_evaluated > 0);
    assert!(report.range_kl_pf.is_finite());
    assert!(
        report.knn_hit_pf > report.knn_hit_sm,
        "PF {} vs SM {} on 3 floors",
        report.knn_hit_pf,
        report.knn_hit_sm
    );
}
