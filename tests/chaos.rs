//! Deterministic chaos harness for the reading pipeline.
//!
//! A small scenario DSL builds [`FaultPlan`]s — drops, duplicates,
//! bounded delivery jitter, reader burst outages — and drives them
//! through both entry points of the pipeline:
//!
//! * the **facade** ([`IndoorQuerySystem`]) fed by a scripted detection
//!   stream through a [`FaultInjector`], checking structural invariants
//!   of the probabilistic index and bit-identity across runs and worker
//!   counts;
//! * the **experiment harness** ([`Experiment`]), pinning a monotone
//!   degradation ladder as a golden artifact
//!   (`tests/fixtures/expected_degradation.txt`, regenerate with
//!   `RIPQ_REGEN_GOLDEN=1 cargo test --test chaos`).
//!
//! Faults a consumer can absorb exactly — duplicates (idempotent
//! ingest) and delays within the reorder window (watermark evaluation)
//! — must leave query answers *byte-identical* to the committed
//! fault-free golden fixture `tests/fixtures/expected_queries.txt`.

use ripq::core::{
    DistanceBackend, EvaluationReport, IndoorQuerySystem, QueryId, SystemConfig, TimingMode,
};
use ripq::floorplan::{office_building, FloorPlan, FloorPlanBuilder, OfficeParams};
use ripq::geom::{Point2, Rect};
use ripq::rfid::{ObjectId, ReaderId};
use ripq::sim::{Experiment, ExperimentParams, FaultInjector, FaultPlan};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

// ---------------------------------------------------------------------
// Scenario DSL
// ---------------------------------------------------------------------

/// One named cell of the chaos grid: a fault plan under construction.
#[derive(Debug, Clone)]
struct Scenario {
    name: String,
    plan: FaultPlan,
}

impl Scenario {
    fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            plan: FaultPlan::none(),
        }
    }

    fn drop_readings(mut self, p: f64) -> Self {
        self.plan.drop_probability = p;
        self
    }

    fn duplicate(mut self, p: f64) -> Self {
        self.plan.duplicate_probability = p;
        self
    }

    fn delay_up_to(mut self, seconds: u64) -> Self {
        self.plan.max_delay_seconds = seconds;
        self
    }

    fn outages(mut self, rate: f64, mean_seconds: f64) -> Self {
        self.plan.outage_rate = rate;
        self.plan.outage_mean_seconds = mean_seconds;
        self
    }
}

/// The full factorial grid: drop rate × jitter window × outage rate,
/// with a fixed duplicate rate so idempotent ingest is exercised in
/// every cell. 3 × 2 × 2 = 12 cells.
fn fault_grid() -> Vec<Scenario> {
    let mut grid = Vec::new();
    for &drop in &[0.0, 0.1, 0.35] {
        for &delay in &[0u64, 3] {
            for &outage in &[0.0, 0.003] {
                grid.push(
                    Scenario::new(format!("drop{drop}_delay{delay}_outage{outage}"))
                        .drop_readings(drop)
                        .duplicate(0.1)
                        .delay_up_to(delay)
                        .outages(outage, 8.0),
                );
            }
        }
    }
    grid
}

// ---------------------------------------------------------------------
// Facade driver: scripted stream → injector → IndoorQuerySystem
// ---------------------------------------------------------------------

const STREAM_SECONDS: u64 = 60;
const STREAM_OBJECTS: u32 = 6;

/// The clean scripted stream: each object walks across the reader
/// deployment (handoff every 6 s) with a periodic silent second, so
/// episodes, handoffs and LEAVE events all occur without any faults.
fn clean_detections(second: u64, readers: &[ReaderId]) -> Vec<(ObjectId, ReaderId)> {
    let mut out = Vec::new();
    for i in 0..STREAM_OBJECTS {
        if (second + u64::from(i)).is_multiple_of(11) {
            continue;
        }
        let r = (u64::from(i) * 3 + second / 6) % readers.len() as u64;
        out.push((ObjectId::new(i), readers[r as usize]));
    }
    out
}

struct ScenarioRun {
    report: EvaluationReport,
    range_q: QueryId,
    knn_q: QueryId,
}

/// Runs one scenario end to end through the facade: derive the outage
/// schedule, stream faulted deliveries, drain the jitter tail, flush to
/// the final watermark, evaluate. Fully logical timing, observability
/// on, pruning off so every object is preprocessed and indexed.
fn run_scenario(plan: FaultPlan, workers: Option<usize>) -> ScenarioRun {
    let floor = office_building(&OfficeParams::default()).expect("valid office");
    let config = SystemConfig {
        reader_count: 8,
        prune_candidates: false,
        parallelism: workers,
        reorder_window: plan.max_delay_seconds,
        timing: TimingMode::Logical,
        observability: true,
        ..SystemConfig::default()
    };
    let mut sys = IndoorQuerySystem::new(floor, config, 0xC4A05);
    let readers: Vec<ReaderId> = sys.readers().iter().map(|r| r.id()).collect();

    let mut injector = FaultInjector::new(plan, readers.len(), STREAM_SECONDS);
    for o in injector.outages().to_vec() {
        sys.note_reader_outage(o.reader, o.from, o.until);
    }
    let horizon = STREAM_SECONDS + plan.max_delay_seconds;
    for s in 0..=horizon {
        let clean = if s <= STREAM_SECONDS {
            clean_detections(s, &readers)
        } else {
            Vec::new()
        };
        let delivered = injector.step(s, &clean);
        sys.ingest_delivery(s, &delivered);
    }
    sys.flush_readings_through(STREAM_SECONDS);
    assert_eq!(injector.in_flight(), 0, "jitter buffer fully drained");

    let bounds = sys.plan().bounds();
    let range_q = sys
        .register_range(Rect::new(
            bounds.min().x,
            bounds.min().y,
            bounds.width() * 0.5,
            bounds.height() * 0.5,
        ))
        .expect("range query");
    let knn_point = sys.readers()[0].position();
    let knn_q = sys.register_knn(knn_point, 2).expect("kNN query");
    let report = sys.evaluate(STREAM_SECONDS);
    ScenarioRun {
        report,
        range_q,
        knn_q,
    }
}

/// Structural invariants that must hold under *any* fault plan.
fn assert_invariants(run: &ScenarioRun, label: &str) {
    let index = &run.report.index;
    let mut anchors_seen = BTreeSet::new();
    for o in index.objects() {
        // Probability-mass bound: a distribution never sums above 1
        // (it may sum below 1 while an object coasts).
        let mass = index.total_probability(o);
        assert!(
            (0.0..=1.0 + 1e-9).contains(&mass),
            "{label}: object {o} carries probability mass {mass}"
        );
        let dist = index.distribution(o).expect("listed object has entries");
        for &(a, p) in dist {
            assert!(
                p >= 0.0 && p.is_finite(),
                "{label}: negative/NaN probability {p} at {a}"
            );
            // Forward view → reverse view (APtoObjHT consistency).
            assert!(
                index
                    .at_anchor(a)
                    .iter()
                    .any(|&(entry, q)| entry == *o && q == p),
                "{label}: {o}@{a} missing from the anchor-side view"
            );
            anchors_seen.insert(a);
        }
    }
    // Reverse view → forward view: no phantom anchor entries.
    for &a in &anchors_seen {
        for &(o, p) in index.at_anchor(a) {
            let dist = index.distribution(&o).expect("anchor entry has object");
            assert!(
                dist.iter().any(|&(da, dp)| da == a && dp == p),
                "{label}: anchor-side entry {o}@{a} missing from its distribution"
            );
        }
    }
    for rs in run
        .report
        .range_results
        .values()
        .chain(run.report.knn_results.values())
    {
        for r in rs.sorted() {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&r.probability),
                "{label}: query probability {} out of range",
                r.probability
            );
        }
    }
}

/// Renders everything comparable about a run — query answers (exact
/// bits), index masses, and the full metrics snapshot (deterministic
/// under logical timing) — for byte-identity assertions.
fn render_run(run: &ScenarioRun) -> String {
    let mut out = String::new();
    for (kind, rs) in [
        ("range", &run.report.range_results[&run.range_q]),
        ("knn", &run.report.knn_results[&run.knn_q]),
    ] {
        for r in rs.sorted() {
            writeln!(
                out,
                "{kind} {} {:016x}",
                r.object.raw(),
                r.probability.to_bits()
            )
            .expect("string write");
        }
    }
    for o in run.report.index.objects() {
        writeln!(
            out,
            "mass {} {:016x}",
            o.raw(),
            run.report.index.total_probability(o).to_bits()
        )
        .expect("string write");
    }
    let snapshot = run.report.metrics.as_ref().expect("observability on");
    out.push_str(&snapshot.to_json());
    out
}

// ---------------------------------------------------------------------
// The chaos grid
// ---------------------------------------------------------------------

#[test]
fn fault_grid_preserves_invariants_and_is_deterministic() {
    let grid = fault_grid();
    assert!(grid.len() >= 12, "grid must cover at least 12 cells");
    for sc in &grid {
        let a = run_scenario(sc.plan, None);
        assert_invariants(&a, &sc.name);
        let b = run_scenario(sc.plan, None);
        assert_eq!(
            render_run(&a),
            render_run(&b),
            "cell {} is not reproducible",
            sc.name
        );
    }
}

#[test]
fn faulted_pipeline_is_worker_count_invariant() {
    for sc in [
        Scenario::new("mild").drop_readings(0.1).duplicate(0.1),
        Scenario::new("jittery")
            .drop_readings(0.1)
            .duplicate(0.2)
            .delay_up_to(4),
        Scenario::new("severe")
            .drop_readings(0.35)
            .duplicate(0.15)
            .delay_up_to(3)
            .outages(0.004, 8.0),
    ] {
        let r1 = render_run(&run_scenario(sc.plan, Some(1)));
        let r2 = render_run(&run_scenario(sc.plan, Some(2)));
        let r4 = render_run(&run_scenario(sc.plan, Some(4)));
        assert_eq!(r1, r2, "{}: workers 1 vs 2 diverge", sc.name);
        assert_eq!(r1, r4, "{}: workers 1 vs 4 diverge", sc.name);
    }
}

// ---------------------------------------------------------------------
// Incremental APtoObjHT under faults: multi-pass chaos cell
// ---------------------------------------------------------------------

/// Streams one faulted scenario through the facade and evaluates at
/// *several* watermarks, so the live APtoObjHT is incrementally
/// re-derived (apply / retract deltas) pass over pass while faults
/// perturb which objects have fresh readings. Returns one rendered
/// transcript per pass — query bits, index masses, final stripped
/// metrics — plus the last report for invariant checks.
fn run_scenario_passes(
    plan: FaultPlan,
    workers: Option<usize>,
    backend: DistanceBackend,
) -> (Vec<String>, ScenarioRun) {
    let floor = office_building(&OfficeParams::default()).expect("valid office");
    let config = SystemConfig {
        reader_count: 8,
        prune_candidates: false,
        parallelism: workers,
        reorder_window: plan.max_delay_seconds,
        timing: TimingMode::Logical,
        observability: true,
        distance_backend: backend,
        ..SystemConfig::default()
    };
    let mut sys = IndoorQuerySystem::new(floor, config, 0xC4A05);
    let readers: Vec<ReaderId> = sys.readers().iter().map(|r| r.id()).collect();

    let mut injector = FaultInjector::new(plan, readers.len(), STREAM_SECONDS);
    for o in injector.outages().to_vec() {
        sys.note_reader_outage(o.reader, o.from, o.until);
    }
    let bounds = sys.plan().bounds();
    let range_q = sys
        .register_range(Rect::new(
            bounds.min().x,
            bounds.min().y,
            bounds.width() * 0.5,
            bounds.height() * 0.5,
        ))
        .expect("range query");
    let knn_point = sys.readers()[0].position();
    let knn_q = sys.register_knn(knn_point, 2).expect("kNN query");

    let jitter = plan.max_delay_seconds;
    let horizon = STREAM_SECONDS + jitter;
    let mut renders = Vec::new();
    let mut last = None;
    for s in 0..=horizon {
        let clean = if s <= STREAM_SECONDS {
            clean_detections(s, &readers)
        } else {
            Vec::new()
        };
        let delivered = injector.step(s, &clean);
        sys.ingest_delivery(s, &delivered);
        let watermark = s.saturating_sub(jitter);
        if watermark > 0 && watermark.is_multiple_of(20) && s >= jitter {
            sys.flush_readings_through(watermark);
            let run = ScenarioRun {
                report: sys.evaluate(watermark),
                range_q,
                knn_q,
            };
            renders.push(render_run_portable(&run));
            last = Some(run);
        }
    }
    (
        renders,
        last.expect("60-second stream evaluates at least once"),
    )
}

/// [`render_run`] minus the backend-local effort metrics (`oracle.*`
/// gauges exist only under ALT; `spcache.*` legitimately differs), so
/// transcripts compare across distance backends.
fn render_run_portable(run: &ScenarioRun) -> String {
    let mut out = String::new();
    for (kind, rs) in [
        ("range", &run.report.range_results[&run.range_q]),
        ("knn", &run.report.knn_results[&run.knn_q]),
    ] {
        for r in rs.sorted() {
            writeln!(
                out,
                "{kind} {} {:016x}",
                r.object.raw(),
                r.probability.to_bits()
            )
            .expect("string write");
        }
    }
    for o in run.report.index.objects() {
        writeln!(
            out,
            "mass {} {:016x}",
            o.raw(),
            run.report.index.total_probability(o).to_bits()
        )
        .expect("string write");
    }
    let mut snapshot = run.report.metrics.clone().expect("observability on");
    let local = |k: &str| k.starts_with("oracle.") || k.starts_with("spcache.");
    snapshot.counters.retain(|k, _| !local(k));
    snapshot.gauges.retain(|k, _| !local(k));
    out.push_str(&snapshot.to_json());
    out
}

#[test]
fn incremental_index_survives_the_chaos_grid_across_passes() {
    let severe = Scenario::new("severe-multipass")
        .drop_readings(0.35)
        .duplicate(0.15)
        .delay_up_to(3)
        .outages(0.004, 8.0);

    let (base, last) = run_scenario_passes(severe.plan, None, DistanceBackend::Dijkstra);
    assert!(base.len() >= 3, "stream yields at least three passes");
    assert_invariants(&last, &severe.name);

    // The delta path actually ran: every pass re-derives the index
    // incrementally, and the counters surface in the snapshot.
    let snap = last.report.metrics.as_ref().expect("observability on");
    assert!(
        snap.counters["index.delta_applied"] > 0,
        "incremental index applied no deltas"
    );
    for key in ["index.delta_retracted", "index.delta_unchanged"] {
        assert!(snap.counters.contains_key(key), "missing counter {key}");
    }

    // Reproducible, worker-count invariant, and distance-backend
    // invariant — pass by pass, byte for byte.
    let (repeat, _) = run_scenario_passes(severe.plan, None, DistanceBackend::Dijkstra);
    assert_eq!(base, repeat, "multi-pass cell is not reproducible");
    let (workers, _) = run_scenario_passes(severe.plan, Some(4), DistanceBackend::Dijkstra);
    assert_eq!(base, workers, "worker count leaked into a pass transcript");
    let (alt, alt_last) = run_scenario_passes(severe.plan, Some(2), DistanceBackend::Alt);
    assert_eq!(base, alt, "distance backend leaked into a pass transcript");
    assert_invariants(&alt_last, "severe-multipass-alt");
}

// ---------------------------------------------------------------------
// Absorbable faults: byte-identical to the fault-free golden fixture
// ---------------------------------------------------------------------

/// Parses `tests/fixtures/mini_plan.txt` (same format as the golden
/// test).
fn load_mini_plan() -> FloorPlan {
    let text = std::fs::read_to_string(fixture_path("mini_plan.txt")).expect("plan fixture");
    let mut b = FloorPlanBuilder::new();
    let mut halls = Vec::new();
    let mut rooms = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        let num = |i: usize| f[i].parse::<f64>().expect("numeric field");
        match f[0] {
            "hallway" => {
                halls.push(b.add_hallway(Rect::new(num(1), num(2), num(3), num(4)), f[5]));
            }
            "room" => {
                rooms.push(b.add_room(Rect::new(num(1), num(2), num(3), num(4)), f[5]));
            }
            "door" => {
                let room = rooms[f[3].parse::<usize>().expect("room index")];
                let hall = halls[f[4].parse::<usize>().expect("hallway index")];
                b.add_door(Point2::new(num(1), num(2)), room, hall);
            }
            other => panic!("unknown plan directive {other:?}"),
        }
    }
    b.build().expect("fixture plan is valid")
}

/// Replays the golden fixture's trace through the delivery path under
/// `plan`, then renders the exact golden file format. The seed, config
/// and queries mirror `tests/golden.rs` line for line.
fn golden_fixture_under_faults(plan: FaultPlan) -> String {
    const SEED: u64 = 0x60_1D;
    let config = SystemConfig {
        reader_count: 6,
        prune_candidates: false,
        reorder_window: plan.max_delay_seconds,
        ..SystemConfig::default()
    };
    let mut sys = IndoorQuerySystem::new(load_mini_plan(), config, SEED);
    let readers: Vec<ReaderId> = sys.readers().iter().map(|r| r.id()).collect();

    let text = std::fs::read_to_string(fixture_path("mini_trace.txt")).expect("trace fixture");
    let mut by_second: std::collections::BTreeMap<u64, Vec<(ObjectId, ReaderId)>> =
        std::collections::BTreeMap::new();
    let mut last = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        let second: u64 = f[0].parse().expect("second");
        let object: u32 = f[1].parse().expect("object");
        let reader: usize = f[2].parse().expect("reader index");
        by_second
            .entry(second)
            .or_default()
            .push((ObjectId::new(object), readers[reader]));
        last = last.max(second);
    }
    let now = last + 3;

    let mut injector = FaultInjector::new(plan, readers.len(), now);
    for s in 0..=now + plan.max_delay_seconds {
        let clean = if s <= now {
            by_second.remove(&s).unwrap_or_default()
        } else {
            Vec::new()
        };
        let delivered = injector.step(s, &clean);
        sys.ingest_delivery(s, &delivered);
    }
    sys.flush_readings_through(now);

    let range_q = sys
        .register_range(Rect::new(2.0, 6.0, 12.0, 5.0))
        .expect("range query");
    let knn_q = sys
        .register_knn(Point2::new(12.0, 9.0), 2)
        .expect("kNN query");
    let report = sys.evaluate(now);

    let mut actual = String::new();
    writeln!(
        actual,
        "# Golden Algorithm 3/4 outputs at t={now}, seed {SEED:#x}.\n\
         # Regenerate: RIPQ_REGEN_GOLDEN=1 cargo test --test golden\n\
         # format: <kind> <object> <f64-bits-hex> <decimal>"
    )
    .expect("string write");
    writeln!(
        actual,
        "candidates_processed {}",
        report.candidates_processed
    )
    .unwrap();
    for (kind, rs) in [
        ("range", &report.range_results[&range_q]),
        ("knn", &report.knn_results[&knn_q]),
    ] {
        for r in rs.sorted() {
            writeln!(
                actual,
                "{kind} {} {:016x} {:.17e}",
                r.object.raw(),
                r.probability.to_bits(),
                r.probability
            )
            .expect("string write");
        }
    }
    actual
}

#[test]
fn absorbable_faults_match_fault_free_golden_byte_for_byte() {
    let expected =
        std::fs::read_to_string(fixture_path("expected_queries.txt")).expect("golden fixture");

    // Duplicates only: idempotent ingest drops every copy.
    let dup_only = Scenario::new("dup-only").duplicate(0.6).plan;
    assert!(dup_only.is_active());
    assert_eq!(
        golden_fixture_under_faults(dup_only),
        expected,
        "duplicate-only plan must be absorbed exactly"
    );

    // In-window reorder only: the reorder buffer restores logical order
    // before any affected second is evaluated.
    let jitter_only = Scenario::new("jitter-only").delay_up_to(4).plan;
    assert!(jitter_only.is_active());
    assert_eq!(
        golden_fixture_under_faults(jitter_only),
        expected,
        "in-window delay plan must be absorbed exactly"
    );

    // Both at once are still absorbable.
    let both = Scenario::new("dup+jitter")
        .duplicate(0.4)
        .delay_up_to(3)
        .plan;
    assert_eq!(
        golden_fixture_under_faults(both),
        expected,
        "duplicates plus bounded jitter must be absorbed exactly"
    );
}

// ---------------------------------------------------------------------
// Degradation ladder golden artifact
// ---------------------------------------------------------------------

fn ladder_params(faults: FaultPlan) -> ExperimentParams {
    ExperimentParams {
        num_objects: 12,
        duration: 90,
        warmup: 30,
        eval_timestamps: 4,
        range_queries_per_timestamp: 10,
        knn_query_points: 6,
        faults,
        ..Default::default()
    }
}

fn degradation_ladder() -> Vec<Scenario> {
    vec![
        Scenario::new("baseline"),
        Scenario::new("mild")
            .drop_readings(0.05)
            .duplicate(0.05)
            .delay_up_to(1),
        Scenario::new("moderate")
            .drop_readings(0.2)
            .duplicate(0.1)
            .delay_up_to(3)
            .outages(0.001, 10.0),
        Scenario::new("severe")
            .drop_readings(0.45)
            .duplicate(0.15)
            .delay_up_to(5)
            .outages(0.004, 12.0),
    ]
}

fn render_ladder() -> String {
    let mut out = String::from(
        "# Accuracy degradation ladder under increasing fault severity.\n\
         # Regenerate: RIPQ_REGEN_GOLDEN=1 cargo test --test chaos\n\
         # format: <scenario> <metric> <f64-bits-hex> <decimal>\n",
    );
    for sc in degradation_ladder() {
        let r = Experiment::new(ladder_params(sc.plan)).run();
        for (metric, v) in [
            ("range_kl_pf", r.range_kl_pf),
            ("range_kl_sm", r.range_kl_sm),
            ("knn_hit_pf", r.knn_hit_pf),
            ("knn_hit_sm", r.knn_hit_sm),
            ("top1_success", r.top1_success),
            ("mean_error_pf", r.mean_error_pf),
        ] {
            writeln!(out, "{} {metric} {:016x} {:.17e}", sc.name, v.to_bits(), v)
                .expect("string write");
        }
    }
    out
}

#[test]
fn degradation_ladder_matches_golden_and_is_monotone() {
    let actual = render_ladder();

    // The ladder itself must degrade: the fault-free endpoint beats the
    // severe endpoint on localization error (weak endpoint check; the
    // per-rung goldens pin the exact values).
    let reports: Vec<_> = degradation_ladder()
        .into_iter()
        .map(|sc| Experiment::new(ladder_params(sc.plan)).run())
        .collect();
    let baseline = &reports[0];
    let severe = reports.last().expect("ladder has rungs");
    assert!(
        severe.mean_error_pf > baseline.mean_error_pf,
        "severe faults must increase PF localization error \
         ({} vs {})",
        severe.mean_error_pf,
        baseline.mean_error_pf
    );

    let path = fixture_path("expected_degradation.txt");
    if std::env::var_os("RIPQ_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write degradation fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .expect("missing degradation fixture; run with RIPQ_REGEN_GOLDEN=1 to create it");
    assert_eq!(
        expected, actual,
        "degradation ladder drifted from the golden fixture; if intentional, \
         regenerate with RIPQ_REGEN_GOLDEN=1 cargo test --test chaos"
    );
}

// ---------------------------------------------------------------------
// Observability of degradations
// ---------------------------------------------------------------------

#[test]
fn fault_counters_surface_in_metrics_snapshot() {
    let params = ExperimentParams {
        observability: true,
        ..ladder_params(
            Scenario::new("observed")
                .drop_readings(0.2)
                .duplicate(0.1)
                .delay_up_to(3)
                .outages(0.002, 10.0)
                .plan,
        )
    };
    let (_, snapshot) = Experiment::new(params).run_with_metrics();
    let snap = snapshot.expect("observability on yields a snapshot");
    for key in [
        "faults.injected.dropped",
        "faults.injected.duplicated",
        "faults.injected.delayed",
        "faults.injected.outage_losses",
        "collector.reordered",
        "collector.deduped",
        "collector.late_dropped",
        "collector.outage_suppressed_leaves",
        "pf.outage_resets",
    ] {
        assert!(snap.counters.contains_key(key), "missing counter {key}");
    }
    assert!(snap.counters["faults.injected.dropped"] > 0);
    assert!(snap.counters["faults.injected.duplicated"] > 0);
    assert!(snap.counters["faults.injected.delayed"] > 0);
    assert!(snap.counters["collector.reordered"] > 0);
    assert!(snap.counters["collector.deduped"] > 0);
    // Nothing is ever delivered beyond the window the injector promises.
    assert_eq!(snap.counters["collector.late_dropped"], 0);
}
