//! Cross-crate consistency invariants that no single crate can check on
//! its own.

use ripq::floorplan::{office_building, Location, OfficeParams};
use ripq::graph::{build_walking_graph, AnchorSet};
use ripq::rfid::deploy_uniform;
use ripq::symbolic::SymbolicModel;

/// The symbolic model's restricted reachability never exceeds plain graph
/// reachability: every anchor it deems reachable from a reader within
/// `u_max · t` really is within that network distance (readers only
/// *remove* options).
#[test]
fn symbolic_reachability_bounded_by_network_distance() {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let graph = build_walking_graph(&plan);
    let anchors = AnchorSet::generate(&graph, &plan, 1.0);
    let readers = deploy_uniform(&plan, &graph, 19, 2.0);
    let model = SymbolicModel::new(&graph, &anchors, &readers, 1.5);

    let reader = &readers[5];
    let sp = graph.shortest_paths_from(reader.graph_pos());
    for elapsed in [0u64, 5, 15, 40] {
        let lmax = 1.5 * elapsed as f64;
        for (a, _) in model.infer(reader.id(), elapsed) {
            let d = sp.distance_to(&graph, anchors.anchor(a).pos);
            // Anchor-graph hops approximate arc length; allow slack for
            // the activation radius (distance is measured from range
            // boundary) plus discretization.
            assert!(
                d <= lmax + reader.activation_range() + 3.0,
                "anchor {a} at network distance {d} > lmax {lmax}"
            );
        }
    }
}

/// Anchor locations agree with the floor plan point location.
#[test]
fn anchor_locations_consistent_with_plan() {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let graph = build_walking_graph(&plan);
    let anchors = AnchorSet::generate(&graph, &plan, 1.0);
    for a in anchors.anchors() {
        assert_eq!(plan.locate(a.point), a.location);
        match a.location {
            Location::Room(r) => {
                assert!(anchors.in_room(r).contains(&a.id));
            }
            Location::Hallway(h) => {
                assert!(anchors.in_hallway(h).contains(&a.id));
            }
            Location::Outside => panic!("anchor {} outside the building", a.id),
        }
    }
}

/// Readers deployed by `deploy_uniform` cover every hallway's centerline
/// often enough that a walker is re-detected within a bounded gap: no
/// point of any centerline is farther than one full spacing from a reader.
#[test]
fn reader_coverage_gaps_bounded() {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let graph = build_walking_graph(&plan);
    let readers = deploy_uniform(&plan, &graph, 19, 2.0);
    let spacing = plan.total_centerline_length() / 19.0;
    for hall in plan.hallways() {
        let line = hall.centerline();
        let steps = line.length().ceil() as usize;
        for i in 0..=steps {
            let p = line.point_at(i as f64);
            let nearest = readers
                .iter()
                .map(|r| r.position().distance(p))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest <= spacing + 1e-6,
                "point {p} on {} is {nearest} m from the closest reader",
                hall.name()
            );
        }
    }
}

/// Walking-graph room nodes, floor-plan rooms and anchor room sets line up
/// one-to-one.
#[test]
fn room_representations_agree() {
    let plan = office_building(&OfficeParams::default()).unwrap();
    let graph = build_walking_graph(&plan);
    let anchors = AnchorSet::generate(&graph, &plan, 1.0);
    for room in plan.rooms() {
        let node = graph.room_node(room.id());
        assert!(room.contains(graph.node(node).position));
        // The nearest anchor to the room node lies in the room.
        let link = graph.edges_at(node)[0];
        let offset = graph.edge(link).offset_of(node).unwrap();
        let nearest = anchors.nearest(ripq::graph::GraphPos::new(link, offset));
        assert_eq!(
            anchors.anchor(nearest).location,
            Location::Room(room.id()),
            "nearest anchor to {}'s node is not in the room",
            room.id()
        );
    }
}
