//! Kill-and-recover harness for the crash-safe checkpoint layer.
//!
//! Drives the [`IndoorQuerySystem`] facade with a scripted detection
//! stream, kills it at arbitrary points, recovers a fresh process image
//! from the durable snapshot, replays the reading suffix, and demands
//! the recovered run be **byte-identical** to an uninterrupted one —
//! query answers and the full metrics snapshot (minus the `recovery.*`
//! bookkeeping counters, which by design differ) — across worker counts
//! 1/2/4, arbitrary checkpoint cadences, and proptest-chosen kill
//! points. Damaged snapshots (bit flips anywhere in the file) must
//! never panic: they quarantine to `*.corrupt` and rebuild cold.
//!
//! The on-disk frame layout itself is pinned by the
//! `tests/fixtures/expected_snapshot_header.txt` golden
//! (regenerate with `RIPQ_REGEN_GOLDEN=1 cargo test --test recovery`).

use proptest::prelude::*;
use ripq::core::{IndoorQuerySystem, QueryId, RecoveryOutcome, SystemConfig, TimingMode};
use ripq::floorplan::{office_building, OfficeParams};
use ripq::geom::Rect;
use ripq::rfid::{ObjectId, ReaderId};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const STREAM_SECONDS: u64 = 48;
const STREAM_OBJECTS: u32 = 5;
/// Evaluation timestamps the harness fires as the stream advances.
const EVAL_TIMES: [u64; 3] = [15, 30, 48];
const SEED: u64 = 0x05EC_04E3;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ripq_recovery_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Scripted walk: every object hops across the reader deployment with a
/// periodic silent second, so episodes, handoffs and coasting all occur.
fn detections(second: u64, readers: &[ReaderId]) -> Vec<(ObjectId, ReaderId)> {
    let mut out = Vec::new();
    for i in 0..STREAM_OBJECTS {
        if (second + u64::from(i)).is_multiple_of(13) {
            continue;
        }
        let r = (u64::from(i) * 3 + second / 5) % readers.len() as u64;
        out.push((ObjectId::new(i), readers[r as usize]));
    }
    out
}

fn new_system(workers: Option<usize>, checkpoint_every: u64) -> IndoorQuerySystem {
    let floor = office_building(&OfficeParams::default()).expect("valid office");
    let config = SystemConfig {
        reader_count: 8,
        prune_candidates: false,
        parallelism: workers,
        timing: TimingMode::Logical,
        observability: true,
        checkpoint_every,
        ..SystemConfig::default()
    };
    IndoorQuerySystem::new(floor, config, SEED)
}

/// Queries are deliberately not part of the snapshot — a recovered
/// process re-registers them in the same order, like any client would.
fn register_queries(sys: &mut IndoorQuerySystem) -> (QueryId, QueryId) {
    let bounds = sys.plan().bounds();
    let range_q = sys
        .register_range(Rect::new(
            bounds.min().x,
            bounds.min().y,
            bounds.width() * 0.5,
            bounds.height() * 0.5,
        ))
        .expect("range query");
    let knn_point = sys.readers()[0].position();
    let knn_q = sys.register_knn(knn_point, 2).expect("kNN query");
    (range_q, knn_q)
}

/// Ingests seconds `from..=to`, evaluating at each due timestamp, and
/// appends every evaluation's exact answers to `transcript`.
fn drive(
    sys: &mut IndoorQuerySystem,
    queries: (QueryId, QueryId),
    from: u64,
    to: u64,
    transcript: &mut String,
) {
    let readers: Vec<ReaderId> = sys.readers().iter().map(|r| r.id()).collect();
    for s in from..=to {
        sys.ingest_detections(s, &detections(s, &readers));
        if EVAL_TIMES.contains(&s) {
            let report = sys.evaluate(s);
            for (kind, q) in [("range", queries.0), ("knn", queries.1)] {
                let rs = match kind {
                    "range" => &report.range_results[&q],
                    _ => &report.knn_results[&q],
                };
                for r in rs.sorted() {
                    writeln!(
                        transcript,
                        "t{s} {kind} {} {:016x}",
                        r.object.raw(),
                        r.probability.to_bits()
                    )
                    .expect("string write");
                }
            }
        }
    }
}

/// The full comparable state at end of run: the evaluation transcript
/// plus every metric except the `recovery.*` counters (checkpoint and
/// recovery bookkeeping legitimately differs between lives).
fn final_render(sys: &IndoorQuerySystem, transcript: &str) -> String {
    let mut snap = sys.recorder().snapshot();
    snap.counters.retain(|k, _| !k.starts_with("recovery."));
    format!("{transcript}\n{}", snap.to_json())
}

/// One uninterrupted reference life, checkpointing disabled.
fn golden_run(workers: Option<usize>) -> String {
    let mut sys = new_system(workers, 0);
    let queries = register_queries(&mut sys);
    let mut transcript = String::new();
    drive(&mut sys, queries, 0, STREAM_SECONDS, &mut transcript);
    final_render(&sys, &transcript)
}

/// Life 1: run with checkpointing until the crash at `kill_at` (the
/// kill second itself is never ingested). Returns the second recovery
/// replayed from, plus life 2's rendered suffix transcript.
fn kill_and_recover(workers: Option<usize>, every: u64, kill_at: u64, dir: &Path) -> (u64, String) {
    let mut life1 = new_system(workers, every);
    life1.set_checkpoint_dir(dir);
    let q1 = register_queries(&mut life1);
    let mut discarded = String::new();
    if kill_at > 0 {
        drive(&mut life1, q1, 0, kill_at - 1, &mut discarded);
    }
    assert_eq!(life1.last_checkpoint_error(), None, "checkpoints healthy");
    drop(life1); // the crash: everything in memory is gone

    let mut life2 = new_system(workers, every);
    life2.set_checkpoint_dir(dir);
    let outcome = life2.recover(dir).expect("recover succeeds");
    let replay_from = match outcome {
        RecoveryOutcome::Resumed { replay_from } => {
            assert!(replay_from <= kill_at, "snapshot never covers the future");
            replay_from
        }
        RecoveryOutcome::ColdStart => 0,
        RecoveryOutcome::Quarantined { path } => {
            panic!("unexpected quarantine of a healthy snapshot: {path:?}")
        }
    };
    let q2 = register_queries(&mut life2);
    let mut transcript = String::new();
    drive(&mut life2, q2, replay_from, STREAM_SECONDS, &mut transcript);
    (replay_from, final_render(&life2, &transcript))
}

/// The uninterrupted transcript restricted to evaluations a recovered
/// life re-runs (those at or past `replay_from`), plus the metrics tail.
/// Also normalizes trailing newlines, so compare both sides through it.
fn golden_suffix(golden: &str, replay_from: u64) -> String {
    golden
        .lines()
        .filter(|l| {
            if let Some(rest) = l.strip_prefix('t') {
                let t: u64 = rest
                    .split(' ')
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or(0);
                t >= replay_from
            } else {
                true // metrics JSON + separator always compare
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------------
// The kill grid
// ---------------------------------------------------------------------

#[test]
fn kill_and_recover_is_byte_identical_across_worker_counts() {
    for workers in [Some(1), Some(2), Some(4)] {
        let golden = golden_run(workers);
        let dir = temp_dir(&format!("grid_w{}", workers.unwrap_or(0)));
        // Kill at 29 with cadence 8: snapshots at 8/16/24, so recovery
        // replays 24..=48 and re-runs the evaluations at 30 and 48.
        let (replay_from, recovered) = kill_and_recover(workers, 8, 29, &dir);
        assert_eq!(replay_from, 24, "cadence 8 kill 29 resumes at 24");
        assert_eq!(
            golden_suffix(&golden, 24),
            golden_suffix(&recovered, 0),
            "workers {workers:?}: recovered life diverged from uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn worker_count_may_change_across_the_crash() {
    // Snapshot written by a sequential life, resumed by a 4-worker life:
    // per-object RNG streams make the answers bit-identical anyway.
    let golden = golden_run(Some(4));
    let dir = temp_dir("cross_workers");
    let mut life1 = new_system(Some(1), 10);
    life1.set_checkpoint_dir(&dir);
    let q1 = register_queries(&mut life1);
    let mut discarded = String::new();
    drive(&mut life1, q1, 0, 33, &mut discarded);
    drop(life1);

    let mut life2 = new_system(Some(4), 10);
    life2.set_checkpoint_dir(&dir);
    let outcome = life2.recover(&dir).expect("recover succeeds");
    assert_eq!(outcome, RecoveryOutcome::Resumed { replay_from: 30 });
    let q2 = register_queries(&mut life2);
    let mut transcript = String::new();
    drive(&mut life2, q2, 30, STREAM_SECONDS, &mut transcript);
    assert_eq!(
        golden_suffix(&golden, 30),
        golden_suffix(&final_render(&life2, &transcript), 0)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Damage: bit flips quarantine, never panic, and rebuild cold
// ---------------------------------------------------------------------

#[test]
fn bit_flipped_snapshot_is_quarantined_and_rebuilt_cold() {
    let golden = golden_run(Some(2));
    let dir = temp_dir("bitflip");
    let mut life1 = new_system(Some(2), 8);
    life1.set_checkpoint_dir(&dir);
    let q1 = register_queries(&mut life1);
    let mut discarded = String::new();
    drive(&mut life1, q1, 0, 28, &mut discarded);
    drop(life1);

    let path = dir.join("system.ckpt");
    let mut bytes = std::fs::read(&path).expect("snapshot exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).expect("plant corruption");

    let mut life2 = new_system(Some(2), 8);
    life2.set_checkpoint_dir(&dir);
    match life2.recover(&dir).expect("recover never errors on damage") {
        RecoveryOutcome::Quarantined { path: moved } => {
            assert!(moved.to_string_lossy().ends_with(".corrupt"));
            assert!(moved.exists(), "damaged file preserved for forensics");
            assert!(!path.exists(), "damaged file moved out of the way");
        }
        other => panic!("bit flip must quarantine, got {other:?}"),
    }
    assert_eq!(
        life2
            .recorder()
            .snapshot()
            .counters
            .get("recovery.quarantined"),
        Some(&1),
        "quarantine must be counted"
    );

    // Cold rebuild: replay the whole stream; answers match the golden.
    let q2 = register_queries(&mut life2);
    let mut transcript = String::new();
    drive(&mut life2, q2, 0, STREAM_SECONDS, &mut transcript);
    assert_eq!(
        golden_suffix(&golden, 0),
        golden_suffix(&final_render(&life2, &transcript), 0)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Properties: arbitrary kill points, cadences and corruptions
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (kill point, cadence) pair recovers to the uninterrupted
    /// transcript — including cadences that never fire before the kill
    /// (pure cold start) and cadence 1 (a snapshot every second).
    #[test]
    fn any_kill_point_and_cadence_recover_exactly(
        kill_at in 1u64..STREAM_SECONDS,
        every in 1u64..16,
    ) {
        static GOLDEN: std::sync::OnceLock<String> = std::sync::OnceLock::new();
        let golden = GOLDEN.get_or_init(|| golden_run(Some(2)));
        let dir = temp_dir(&format!("prop_{kill_at}_{every}"));
        let (replay_from, recovered) = kill_and_recover(Some(2), every, kill_at, &dir);
        // The snapshot cadence is exact: recovery resumes from the last
        // grid point strictly before the kill.
        let expected_replay = if kill_at > every {
            ((kill_at - 1) / every) * every
        } else {
            0
        };
        prop_assert_eq!(replay_from, expected_replay);
        prop_assert_eq!(
            golden_suffix(golden, replay_from),
            golden_suffix(&recovered, 0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Arbitrary single-byte corruption anywhere in the snapshot file is
    /// always detected (CRC/framing), always quarantined, never a panic
    /// — and the cold rebuild still answers correctly.
    #[test]
    fn arbitrary_corruption_never_panics_and_rebuilds(
        pos_fraction in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let dir = temp_dir(&format!("corrupt_{:.3}_{mask}", pos_fraction));
        let mut life1 = new_system(Some(1), 8);
        life1.set_checkpoint_dir(&dir);
        let q1 = register_queries(&mut life1);
        let mut discarded = String::new();
        drive(&mut life1, q1, 0, 20, &mut discarded);
        drop(life1);

        let path = dir.join("system.ckpt");
        let mut bytes = std::fs::read(&path).expect("snapshot exists");
        let pos = ((bytes.len() - 1) as f64 * pos_fraction) as usize;
        bytes[pos] ^= mask;
        std::fs::write(&path, &bytes).expect("plant corruption");

        let mut life2 = new_system(Some(1), 8);
        life2.set_checkpoint_dir(&dir);
        let outcome = life2.recover(&dir).expect("damage is not an error");
        prop_assert!(
            matches!(outcome, RecoveryOutcome::Quarantined { .. }),
            "corruption at byte {pos} (mask {mask:#x}) was not caught: {outcome:?}"
        );
        // The rebuild completes and produces live answers.
        let q2 = register_queries(&mut life2);
        let mut transcript = String::new();
        drive(&mut life2, q2, 0, 20, &mut transcript);
        // The kNN query always accumulates k objects' worth of
        // probability, so a live rebuild must produce t15 answers.
        prop_assert!(transcript.contains("t15 knn"), "cold rebuild answered");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// Snapshot format golden
// ---------------------------------------------------------------------

#[test]
fn snapshot_format_matches_golden_header_spec() {
    let actual = format!(
        "# On-disk checkpoint frame contract. Any drift must bump\n\
         # FORMAT_VERSION and be a deliberate, reviewed change.\n\
         # Regenerate: RIPQ_REGEN_GOLDEN=1 cargo test --test recovery\n\
         {}",
        ripq::persist::format_spec()
    );
    let path = fixture_path("expected_snapshot_header.txt");
    if std::env::var_os("RIPQ_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write snapshot header fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .expect("missing snapshot header fixture; run with RIPQ_REGEN_GOLDEN=1 to create it");
    assert_eq!(
        expected, actual,
        "snapshot frame layout drifted from the golden contract; if \
         intentional, bump FORMAT_VERSION and regenerate with \
         RIPQ_REGEN_GOLDEN=1 cargo test --test recovery"
    );
}

#[test]
fn written_snapshot_carries_the_pinned_magic_and_version() {
    let dir = temp_dir("header_bytes");
    let mut sys = new_system(Some(1), 0);
    sys.set_checkpoint_dir(&dir);
    let readers: Vec<ReaderId> = sys.readers().iter().map(|r| r.id()).collect();
    for s in 0..=5 {
        sys.ingest_detections(s, &detections(s, &readers));
    }
    sys.checkpoint_now().expect("manual checkpoint");
    let bytes = std::fs::read(dir.join("system.ckpt")).expect("snapshot written");
    assert!(bytes.len() > ripq::persist::HEADER_LEN);
    assert_eq!(&bytes[..8], &ripq::persist::MAGIC[..]);
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
        ripq::persist::FORMAT_VERSION
    );
    let _ = std::fs::remove_dir_all(&dir);
}
