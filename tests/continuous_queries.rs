//! Continuous queries (the §6 extension) against the full pipeline:
//! deltas must be exactly consistent with re-evaluating from scratch.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ripq::core::continuous::{ContinuousKnnQuery, ContinuousRangeQuery};
use ripq::core::{evaluate_knn, evaluate_range, KnnQuery, QueryId, RangeQuery};
use ripq::pf::{ParticleCache, ParticlePreprocessor, PreprocessorConfig};
use ripq::rfid::DataCollector;
use ripq::sim::{ExperimentParams, ReadingGenerator, SimWorld, TraceGenerator};

#[test]
fn continuous_results_match_fresh_evaluation() {
    let params = ExperimentParams::smoke();
    let w = SimWorld::build(&params);
    let mut rng_trace = StdRng::seed_from_u64(21);
    let mut rng_sense = StdRng::seed_from_u64(22);
    let mut rng_pf = StdRng::seed_from_u64(23);
    let traces =
        TraceGenerator::new(6.0).generate(&mut rng_trace, &w.graph, w.plan.rooms().len(), 25, 150);
    let gen = ReadingGenerator::new(&w.graph, &w.readers, params.sensing);
    let objects: Vec<_> = traces.iter().map(|t| t.object).collect();
    let pre = ParticlePreprocessor::new(
        &w.graph,
        &w.anchors,
        &w.readers,
        PreprocessorConfig::default(),
    );
    let mut collector = DataCollector::new();
    let mut cache = ParticleCache::new();

    let room = &w.plan.rooms()[8];
    let range_query = RangeQuery::new(QueryId::new(0), *room.footprint()).unwrap();
    let knn_query = KnnQuery::new(
        QueryId::new(1),
        w.plan.hallways()[0].footprint().center(),
        2,
    )
    .unwrap();
    let mut c_range = ContinuousRangeQuery::new(range_query);
    let mut c_knn = ContinuousKnnQuery::new(knn_query);

    let mut deltas_seen = 0u32;
    for s in 0..=150u64 {
        let det = gen.detections_at(&mut rng_sense, &traces, s);
        collector.ingest_second(s, &det);
        if s < 40 || s % 25 != 0 {
            continue;
        }
        let index = pre.process(&mut rng_pf, &collector, &objects, s, Some(&mut cache));

        let d1 = c_range.update(&w.plan, &w.anchors, &index);
        let d2 = c_knn.update(&w.graph, &w.anchors, &index);
        deltas_seen += u32::from(!d1.is_empty()) + u32::from(!d2.is_empty());

        // The maintained result must equal a from-scratch evaluation.
        let fresh_range = evaluate_range(&w.plan, &w.anchors, &index, &range_query.window);
        let fresh_knn = evaluate_knn(&w.graph, &w.anchors, &index, &knn_query);
        for (o, p) in fresh_range.iter() {
            assert!((c_range.current().probability(o) - p).abs() < 1e-12);
        }
        assert_eq!(c_range.current().len(), fresh_range.len());
        for (o, p) in fresh_knn.iter() {
            assert!((c_knn.current().probability(o) - p).abs() < 1e-12);
        }
        assert_eq!(c_knn.current().len(), fresh_knn.len());
    }
    assert!(deltas_seen > 0, "moving objects must produce deltas");
}
