//! Continuous queries (the §6 extension) against the full pipeline:
//! deltas must be exactly consistent with re-evaluating from scratch.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ripq::core::continuous::{
    ContinuousKnnQuery, ContinuousRangeQuery, SubscriptionKind, SubscriptionRegistry,
};
use ripq::core::{
    evaluate_knn, evaluate_range, IndoorQuerySystem, KnnQuery, QueryId, RangeQuery, ResultSet,
    SystemConfig,
};
use ripq::floorplan::{office_building, OfficeParams};
use ripq::geom::Rect;
use ripq::graph::build_walking_graph;
use ripq::pf::{ParticleCache, ParticlePreprocessor, PreprocessorConfig};
use ripq::rfid::DataCollector;
use ripq::sim::{ExperimentParams, ReadingGenerator, SimWorld, TraceGenerator};
use std::collections::BTreeMap;

#[test]
fn continuous_results_match_fresh_evaluation() {
    let params = ExperimentParams::smoke();
    let w = SimWorld::build(&params);
    let mut rng_trace = StdRng::seed_from_u64(21);
    let mut rng_sense = StdRng::seed_from_u64(22);
    let mut rng_pf = StdRng::seed_from_u64(23);
    let traces =
        TraceGenerator::new(6.0).generate(&mut rng_trace, &w.graph, w.plan.rooms().len(), 25, 150);
    let gen = ReadingGenerator::new(&w.graph, &w.readers, params.sensing);
    let objects: Vec<_> = traces.iter().map(|t| t.object).collect();
    let pre = ParticlePreprocessor::new(
        &w.graph,
        &w.anchors,
        &w.readers,
        PreprocessorConfig::default(),
    );
    let mut collector = DataCollector::new();
    let mut cache = ParticleCache::new();

    let room = &w.plan.rooms()[8];
    let range_query = RangeQuery::new(QueryId::new(0), *room.footprint()).unwrap();
    let knn_query = KnnQuery::new(
        QueryId::new(1),
        w.plan.hallways()[0].footprint().center(),
        2,
    )
    .unwrap();
    let mut c_range = ContinuousRangeQuery::new(range_query);
    let mut c_knn = ContinuousKnnQuery::new(knn_query);

    let mut deltas_seen = 0u32;
    for s in 0..=150u64 {
        let det = gen.detections_at(&mut rng_sense, &traces, s);
        collector.ingest_second(s, &det);
        if s < 40 || s % 25 != 0 {
            continue;
        }
        let index = pre.process(&mut rng_pf, &collector, &objects, s, Some(&mut cache));

        let d1 = c_range.update(&w.plan, &w.anchors, &index);
        let d2 = c_knn.update(&w.graph, &w.anchors, &index);
        deltas_seen += u32::from(!d1.is_empty()) + u32::from(!d2.is_empty());

        // The maintained result must equal a from-scratch evaluation.
        let fresh_range = evaluate_range(&w.plan, &w.anchors, &index, &range_query.window);
        let fresh_knn = evaluate_knn(&w.graph, &w.anchors, &index, &knn_query);
        for (o, p) in fresh_range.iter() {
            assert!((c_range.current().probability(o) - p).abs() < 1e-12);
        }
        assert_eq!(c_range.current().len(), fresh_range.len());
        for (o, p) in fresh_knn.iter() {
            assert!((c_knn.current().probability(o) - p).abs() < 1e-12);
        }
        assert_eq!(c_knn.current().len(), fresh_knn.len());
    }
    assert!(deltas_seen > 0, "moving objects must produce deltas");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Subscription deltas are a faithful change log: folding every
    /// per-epoch [`ResultDelta`] over an initially empty result set
    /// reconstructs the from-scratch evaluation at every epoch, for
    /// range and kNN subscriptions across random scenarios and seeds.
    #[test]
    fn folded_subscription_deltas_equal_from_scratch_evaluation(
        seed in 0u64..10_000,
        objects in 4usize..12,
        fx in 0.15f64..0.85,
        fy in 0.15f64..0.85,
        k in 1usize..4,
    ) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let readers = ripq::rfid::deploy_uniform(&plan, &graph, 19, 2.0);
        let mut rng_trace = StdRng::seed_from_u64(seed);
        let mut rng_sense = StdRng::seed_from_u64(seed.wrapping_add(1));
        let traces = TraceGenerator::new(6.0).generate(
            &mut rng_trace, &graph, plan.rooms().len(), objects, 90,
        );
        let sensor = ReadingGenerator::new(
            &graph, &readers, ripq::rfid::SensingModel::default(),
        );

        let bounds = plan.bounds();
        let window = Rect::centered(
            ripq::geom::Point2::new(
                bounds.min().x + fx * bounds.width(),
                bounds.min().y + fy * bounds.height(),
            ),
            14.0,
            10.0,
        );
        let knn_point = readers[(seed as usize) % readers.len()].position();

        let mut system = IndoorQuerySystem::new(
            office_building(&OfficeParams::default()).unwrap(),
            SystemConfig::default(),
            seed,
        );
        let mut registry = SubscriptionRegistry::new();
        let q_range = system.register_range(window).unwrap();
        let q_knn = system.register_knn(knn_point, k).unwrap();
        registry.insert(1, SubscriptionKind::Range(window), q_range).unwrap();
        registry.insert(2, SubscriptionKind::Knn(knn_point, k), q_knn).unwrap();

        // Fold every emitted delta over initially empty result sets.
        let mut folded: BTreeMap<u64, ResultSet> = BTreeMap::new();
        folded.insert(1, ResultSet::new());
        folded.insert(2, ResultSet::new());
        let mut epochs = 0u32;
        for second in 0..=90u64 {
            let det = sensor.detections_at(&mut rng_sense, &traces, second);
            system.ingest_detections(second, &det);
            if second < 30 || second % 15 != 0 {
                continue;
            }
            epochs += 1;
            let report = system.evaluate(second);
            for (sub, delta) in registry.deltas(&report) {
                if let Some(rs) = folded.get_mut(&sub) {
                    delta.apply(rs);
                }
            }
            // Deltas below the change epsilon are deliberately not
            // re-emitted, so the fold may lag by at most epsilon per
            // epoch per object.
            let tol = 1e-9 * f64::from(epochs);
            for (sub, query) in [(1u64, q_range), (2u64, q_knn)] {
                let fresh = if sub == 1 {
                    &report.range_results[&query]
                } else {
                    &report.knn_results[&query]
                };
                let fold = &folded[&sub];
                prop_assert_eq!(
                    fold.len(), fresh.len(),
                    "sub {} membership at {}", sub, second
                );
                for (o, p) in fresh.iter() {
                    prop_assert!(
                        (fold.probability(o) - p).abs() <= tol,
                        "sub {} drifted on {:?}: {} vs {}", sub, o, fold.probability(o), p
                    );
                }
                // The registry's maintained view is the same fold.
                let current = registry.get(sub).unwrap().current();
                prop_assert_eq!(current.len(), fold.len());
                for (o, p) in current.iter() {
                    prop_assert!((fold.probability(o) - p).abs() <= tol);
                }
            }
        }
        prop_assert!(epochs >= 4);
    }
}
