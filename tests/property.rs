//! Cross-crate property-based tests: randomized floor plans, reading
//! sequences and particle clouds checked against structural invariants.

use proptest::prelude::*;
use ripq::core::{evaluate_knn, evaluate_range, KnnQuery, QueryId};
use ripq::floorplan::FloorPlanBuilder;
use ripq::geom::{Point2, Rect};
use ripq::graph::{build_walking_graph, AnchorObjectIndex, AnchorSet, GraphPos};
use ripq::pf::{ParticlePreprocessor, PreprocessorConfig};
use ripq::rfid::{
    deploy_uniform, DataCollector, HistoryCollector, ObjectId, ReaderId, ReadingStore,
};
use std::collections::BTreeMap;

/// Strategy: a random valid plan with one hallway and 1–6 rooms below it.
fn arb_plan() -> impl Strategy<Value = ripq::floorplan::FloorPlan> {
    (1usize..=6, 4.0f64..10.0, 1.5f64..3.0).prop_map(|(nrooms, room_w, hall_h)| {
        let mut b = FloorPlanBuilder::new();
        let total_w = nrooms as f64 * room_w;
        let hall = b.add_hallway(Rect::new(0.0, 8.0, total_w, hall_h), "H");
        for i in 0..nrooms {
            let x = i as f64 * room_w;
            let r = b.add_room(Rect::new(x, 0.0, room_w, 8.0), format!("R{i}"));
            b.add_door(Point2::new(x + room_w / 2.0, 8.0), r, hall);
        }
        b.build().expect("constructed plans are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_plans_yield_connected_graphs(plan in arb_plan()) {
        let g = build_walking_graph(&plan);
        prop_assert!(g.is_connected());
        // One room node per room, each reachable.
        let rooms = plan.rooms().len();
        let room_nodes = g.nodes().iter().filter(|n| n.kind.is_room()).count();
        prop_assert_eq!(room_nodes, rooms);
    }

    #[test]
    fn network_distance_is_a_metric_on_random_plans(
        plan in arb_plan(),
        fx in 0.0f64..1.0, fy in 0.0f64..1.0, fz in 0.0f64..1.0,
    ) {
        let g = build_walking_graph(&plan);
        let b = plan.bounds();
        let pick = |f: f64| {
            g.project(Point2::new(
                b.min().x + f * b.width(),
                b.min().y + 0.5 * b.height(),
            ))
        };
        let (x, y, z) = (pick(fx), pick(fy), pick(fz));
        let dxy = g.network_distance(x, y);
        let dyx = g.network_distance(y, x);
        let dxz = g.network_distance(x, z);
        let dzy = g.network_distance(z, y);
        prop_assert!((dxy - dyx).abs() < 1e-6, "symmetry: {dxy} vs {dyx}");
        prop_assert!(dxy <= dxz + dzy + 1e-6, "triangle: {dxy} > {dxz}+{dzy}");
        prop_assert!(g.network_distance(x, x) < 1e-9);
    }

    #[test]
    fn anchors_cover_every_edge_on_random_plans(
        plan in arb_plan(),
        spacing in 0.5f64..3.0,
    ) {
        let g = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&g, &plan, spacing);
        for e in g.edges() {
            prop_assert!(!anchors.on_edge(e.id).is_empty());
        }
        // Nearest-anchor lookup is total and self-consistent.
        for e in g.edges().iter().take(5) {
            let pos = GraphPos::new(e.id, e.length() * 0.37);
            let a = anchors.nearest(pos);
            prop_assert_eq!(anchors.anchor(a).pos.edge, e.id);
        }
    }

    #[test]
    fn kde_preserves_probability_mass(
        plan in arb_plan(),
        bandwidth in 0.0f64..5.0,
        offsets in proptest::collection::vec(0.0f64..1.0, 1..40),
    ) {
        let g = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&g, &plan, 1.0);
        let e = &g.edges()[0];
        let n = offsets.len() as f64;
        let cloud: Vec<(GraphPos, f64)> = offsets
            .iter()
            .map(|&f| (GraphPos::new(e.id, e.length() * f), 1.0 / n))
            .collect();
        let dist = anchors.kde_distribution(cloud, bandwidth);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        // All probabilities positive, anchors unique and sorted.
        for w in dist.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        prop_assert!(dist.iter().all(|&(_, p)| p > 0.0));
    }

    /// Feeding identical detection streams, the history collector's view
    /// at "now" is indistinguishable from the snapshot collector.
    #[test]
    fn history_view_equivalent_to_snapshot_collector(
        steps in proptest::collection::vec(
            proptest::option::of((0u32..3, 0u32..4)), 1..60
        ),
    ) {
        let mut snap = DataCollector::new();
        let mut hist = HistoryCollector::new();
        let mut last_second = 0u64;
        for (s, step) in steps.iter().enumerate() {
            let second = s as u64;
            last_second = second;
            let det: Vec<(ObjectId, ReaderId)> = step
                .map(|(o, r)| (ObjectId::new(o), ReaderId::new(r)))
                .into_iter()
                .collect();
            snap.ingest_second(second, &det);
            hist.ingest_second(second, &det);
        }
        let view = hist.view_at(last_second);
        for o in (0..3).map(ObjectId::new) {
            prop_assert_eq!(
                view.last_detection(o),
                snap.last_detection(o),
                "last_detection mismatch for {}", o
            );
            prop_assert_eq!(
                view.last_two_devices(o),
                snap.last_two_devices(o),
                "last_two_devices mismatch for {}", o
            );
            prop_assert_eq!(
                view.last_episode(o),
                snap.last_episode(o),
                "last_episode mismatch for {}", o
            );
            match (ReadingStore::aggregated(&view, o), snap.aggregated(o)) {
                (None, None) => {}
                (Some(h), Some(d)) => {
                    prop_assert_eq!(h.start_second, d.start_second);
                    prop_assert_eq!(h.entries, d.entries);
                }
                (h, d) => {
                    prop_assert!(false, "presence mismatch: {:?} vs {:?}", h.is_some(), d.is_some());
                }
            }
        }
    }

    /// The preprocessor's output is always a probability distribution
    /// (mass 1, sorted unique anchors), whatever reading pattern it saw.
    #[test]
    fn preprocessing_conserves_probability_mass(
        pattern in proptest::collection::vec(proptest::option::of(0u32..19), 5..50),
        seed in 0u64..500,
    ) {
        use rand::SeedableRng;
        let plan = ripq::floorplan::office_building(&Default::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        let mut collector = DataCollector::new();
        let o = ObjectId::new(0);
        let mut any = false;
        for (s, r) in pattern.iter().enumerate() {
            let det: Vec<(ObjectId, ReaderId)> = r
                .map(|r| {
                    any = true;
                    (o, ReaderId::new(r))
                })
                .into_iter()
                .collect();
            collector.ingest_second(s as u64, &det);
        }
        prop_assume!(any);
        let pre = ParticlePreprocessor::new(
            &graph,
            &anchors,
            &readers,
            PreprocessorConfig::default(),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let now = pattern.len() as u64;
        let out = pre
            .process_object(&mut rng, &collector, o, now, None)
            .expect("object was detected");
        let total: f64 = out.distribution.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        for w in out.distribution.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "sorted unique anchors");
        }
        prop_assert!(out.distribution.iter().all(|&(_, p)| p > 0.0));
    }

    /// Whatever the detection pattern and worker count, every per-object
    /// distribution the preprocessing pass snaps into the APtoObjHT is a
    /// (sub-)probability: its total mass never exceeds 1.
    #[test]
    fn index_mass_bounded_after_snapping(
        detections in proptest::collection::vec(
            proptest::option::of((0u32..4, 0u32..19)), 10..40
        ),
        pass_seed in 0u64..1000,
        workers in 1usize..=4,
    ) {
        let plan = ripq::floorplan::office_building(&Default::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        let mut collector = DataCollector::new();
        let mut any = false;
        for (s, step) in detections.iter().enumerate() {
            let det: Vec<(ObjectId, ReaderId)> = step
                .map(|(o, r)| {
                    any = true;
                    (ObjectId::new(o), readers[r as usize].id())
                })
                .into_iter()
                .collect();
            collector.ingest_second(s as u64, &det);
        }
        prop_assume!(any);
        let pre = ParticlePreprocessor::new(
            &graph,
            &anchors,
            &readers,
            PreprocessorConfig::default(),
        );
        let candidates: Vec<ObjectId> = (0..4).map(ObjectId::new).collect();
        let now = detections.len() as u64;
        let index = pre.process_streamed(
            pass_seed,
            &collector,
            &candidates,
            now,
            None,
            Some(workers),
        );
        for o in index.objects() {
            let total = index.total_probability(o);
            prop_assert!(
                total <= 1.0 + 1e-9,
                "object {o:?} carries mass {total} > 1"
            );
            prop_assert!(total > 0.0, "indexed objects must carry mass");
        }
    }

    /// The incrementally maintained APtoObjHT is indistinguishable from a
    /// from-scratch rebuild after ANY sequence of preprocessing passes:
    /// whatever candidate subsets come and go (retractions included),
    /// applying each pass's deltas to a live index yields exactly the
    /// index a fresh pass over the same candidates would build.
    #[test]
    fn incremental_index_equals_rebuild_after_any_delta_sequence(
        detections in proptest::collection::vec(
            proptest::option::of((0u32..5, 0u32..19)), 10..30
        ),
        passes in proptest::collection::vec((0u64..1000, 1u32..32), 1..4),
    ) {
        use ripq::pf::SupervisionOptions;
        let plan = ripq::floorplan::office_building(&Default::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        let mut collector = DataCollector::new();
        let mut any = false;
        for (s, step) in detections.iter().enumerate() {
            let det: Vec<(ObjectId, ReaderId)> = step
                .map(|(o, r)| {
                    any = true;
                    (ObjectId::new(o), readers[r as usize].id())
                })
                .into_iter()
                .collect();
            collector.ingest_second(s as u64, &det);
        }
        prop_assume!(any);
        let pre = ParticlePreprocessor::new(
            &graph,
            &anchors,
            &readers,
            PreprocessorConfig::default(),
        );
        let options = SupervisionOptions::default();
        let mut live = AnchorObjectIndex::new();
        for (i, &(seed, mask)) in passes.iter().enumerate() {
            // Each pass sees a different candidate subset, so objects
            // drop out (retraction) and reappear (insertion) freely.
            let candidates: Vec<ObjectId> = (0..5u32)
                .filter(|o| mask & (1 << o) != 0)
                .map(ObjectId::new)
                .collect();
            let now = detections.len() as u64 + i as u64;
            let (_, stats) = pre.process_supervised_into(
                seed, &collector, &candidates, now, None, None, &options, &mut live,
            );
            let fresh = pre.process_supervised(
                seed, &collector, &candidates, now, None, None, &options,
            );
            prop_assert_eq!(
                &live, &fresh.index,
                "pass {} (seed {}, mask {:#b}): delta-maintained index \
                 diverged from rebuild", i, seed, mask
            );
            prop_assert!(
                (stats.applied + stats.unchanged) as usize <= candidates.len(),
                "pass {}: more deltas than candidates", i
            );
            // Replaying the identical pass is a pure no-op.
            let mut replay = live.clone();
            let (_, stats2) = pre.process_supervised_into(
                seed, &collector, &candidates, now, None, None, &options, &mut replay,
            );
            prop_assert_eq!(&replay, &live, "replay must not move the index");
            prop_assert_eq!(stats2.applied, 0, "replay applied deltas");
            prop_assert_eq!(stats2.retracted, 0, "replay retracted objects");
        }
    }

    /// Algorithm 3 is monotone in the query window: growing the rectangle
    /// never lowers any object's probability (hallway width-ratio and room
    /// area-ratio compensation both grow with window inclusion).
    #[test]
    fn range_probability_monotone_in_window(
        plan in arb_plan(),
        dists in proptest::collection::vec(
            proptest::collection::vec((0.0f64..1.0, 0.01f64..1.0), 1..8),
            1..6,
        ),
        cx in 0.1f64..0.9, cy in 0.1f64..0.9,
        w0 in 0.5f64..4.0, h0 in 0.5f64..4.0,
        steps in 1usize..6,
    ) {
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let n_anchors = anchors.anchors().len();
        let mut index = AnchorObjectIndex::new();
        for (i, dist) in dists.iter().enumerate() {
            // Merge duplicate anchors and normalize to unit mass.
            let mut merged: BTreeMap<_, f64> = BTreeMap::new();
            for &(f, wgt) in dist {
                let a = anchors.anchors()[(f * n_anchors as f64) as usize % n_anchors].id;
                *merged.entry(a).or_insert(0.0) += wgt;
            }
            let total: f64 = merged.values().sum();
            index.set_object(
                ObjectId::new(i as u32),
                merged.into_iter().map(|(a, p)| (a, p / total)).collect(),
            );
        }
        let b = plan.bounds();
        let center = Point2::new(
            b.min().x + cx * b.width(),
            b.min().y + cy * b.height(),
        );
        let mut prev = evaluate_range(
            &plan, &anchors, &index, &Rect::centered(center, w0, h0),
        );
        for step in 1..=steps {
            let grow = 1.0 + step as f64 * 1.5;
            let window = Rect::centered(center, w0 * grow, h0 * grow);
            let cur = evaluate_range(&plan, &anchors, &index, &window);
            for o in (0..dists.len() as u32).map(ObjectId::new) {
                prop_assert!(
                    cur.probability(o) >= prev.probability(o) - 1e-9,
                    "object {o:?}: window growth lowered probability \
                     {} -> {}", prev.probability(o), cur.probability(o)
                );
            }
            prev = cur;
        }
    }

    /// Algorithm 4 with unit-mass objects: the top-k slice is sorted by
    /// descending probability and holds exactly `min(k, candidates)`
    /// entries.
    #[test]
    fn knn_results_sorted_with_min_k_entries(
        plan in arb_plan(),
        dists in proptest::collection::vec(
            proptest::collection::vec((0.0f64..1.0, 0.01f64..1.0), 1..8),
            1..7,
        ),
        k in 1usize..6,
        qx in 0.0f64..1.0, qy in 0.0f64..1.0,
    ) {
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let n_anchors = anchors.anchors().len();
        let mut index = AnchorObjectIndex::new();
        for (i, dist) in dists.iter().enumerate() {
            let mut merged: BTreeMap<_, f64> = BTreeMap::new();
            for &(f, wgt) in dist {
                let a = anchors.anchors()[(f * n_anchors as f64) as usize % n_anchors].id;
                *merged.entry(a).or_insert(0.0) += wgt;
            }
            let total: f64 = merged.values().sum();
            index.set_object(
                ObjectId::new(i as u32),
                merged.into_iter().map(|(a, p)| (a, p / total)).collect(),
            );
        }
        let b = plan.bounds();
        let q = KnnQuery::new(
            QueryId::new(0),
            Point2::new(b.min().x + qx * b.width(), b.min().y + qy * b.height()),
            k,
        )
        .unwrap();
        let rs = evaluate_knn(&graph, &anchors, &index, &q);
        let sorted = rs.sorted();
        for w in sorted.windows(2) {
            prop_assert!(
                w[0].probability >= w[1].probability,
                "results not sorted by descending probability"
            );
        }
        // Each object carries total mass 1, so the Σp ≥ k stopping rule
        // needs at least k distinct objects; with fewer than k candidates
        // the frontier exhausts and returns all of them.
        let candidates = dists.len();
        let top = rs.top(k);
        prop_assert_eq!(
            top.len(),
            k.min(candidates),
            "expected min(k={}, candidates={}) results, got {}",
            k, candidates, rs.len()
        );
    }

    /// Algorithm 2's working set: the collector never reports devices
    /// other than the two most recent detecting episodes' readers, and
    /// they match a straightforward reference model of the episode rules
    /// (same reader within gap tolerance extends; anything else opens a
    /// new episode).
    #[test]
    fn collector_keeps_two_most_recent_devices(
        detections in proptest::collection::vec(
            proptest::option::of((0u32..3, 0u32..4)), 5..80
        ),
    ) {
        // Reference model: per-object episode list (reader, last_second),
        // mirroring the collector's merge rule `gap <= tolerance + 1`
        // with the default tolerance of 2.
        let mut model: BTreeMap<u32, Vec<(u32, u64)>> = BTreeMap::new();
        let mut c = DataCollector::new();
        for (s, step) in detections.iter().enumerate() {
            let second = s as u64;
            let det: Vec<(ObjectId, ReaderId)> = step
                .map(|(o, r)| (ObjectId::new(o), ReaderId::new(r)))
                .into_iter()
                .collect();
            c.ingest_second(second, &det);
            if let Some((o, r)) = *step {
                let eps = model.entry(o).or_default();
                match eps.last_mut() {
                    Some((reader, last)) if *reader == r && second - *last <= 3 => {
                        *last = second;
                    }
                    _ => eps.push((r, second)),
                }
            }
        }
        for (o, eps) in &model {
            let got = c.last_two_devices(ObjectId::new(*o));
            let expect = match eps.as_slice() {
                [] => None,
                [only] => Some((ReaderId::new(only.0), None)),
                [.., prev, last] => {
                    Some((ReaderId::new(prev.0), Some(ReaderId::new(last.0))))
                }
            };
            prop_assert_eq!(got, expect, "device window mismatch for object {}", o);
        }
    }

    /// Detection-range events are well-formed per reader: an object never
    /// LEAVEs a range it has not ENTERed, and never ENTERs one twice
    /// without an intervening LEAVE. (Multiple LEAVEs per ENTER are legal:
    /// a LEAVE fires at the first silent second, yet the episode resumes —
    /// without a fresh ENTER — if the same reader re-detects within the
    /// gap tolerance.) Only checked while the bounded event log has not
    /// evicted history.
    #[test]
    fn enter_precedes_leave_per_device(
        detections in proptest::collection::vec(
            proptest::option::of((0u32..2, 0u32..3)), 5..60
        ),
    ) {
        use ripq::rfid::EventKind;
        let mut c = DataCollector::new();
        for (s, step) in detections.iter().enumerate() {
            let det: Vec<(ObjectId, ReaderId)> = step
                .map(|(o, r)| (ObjectId::new(o), ReaderId::new(r)))
                .into_iter()
                .collect();
            c.ingest_second(s as u64, &det);
        }
        for o in (0..2).map(ObjectId::new) {
            let events = c.events(o);
            prop_assert!(events.len() <= 32, "event log is bounded");
            prop_assume!(events.len() < 32); // eviction truncates prefixes
            for w in events.windows(2) {
                prop_assert!(
                    w[0].second <= w[1].second,
                    "events out of order for {o}"
                );
            }
            let mut last_enter: BTreeMap<u32, u64> = BTreeMap::new();
            let mut last_kind: BTreeMap<u32, EventKind> = BTreeMap::new();
            for e in events {
                match e.kind {
                    EventKind::Enter => {
                        prop_assert!(
                            last_kind.get(&e.reader.raw()) != Some(&EventKind::Enter),
                            "{o} entered {} twice without leaving", e.reader
                        );
                        last_enter.insert(e.reader.raw(), e.second);
                    }
                    EventKind::Leave => {
                        let entered = last_enter.get(&e.reader.raw());
                        prop_assert!(
                            entered.is_some(),
                            "{o} left {} without entering", e.reader
                        );
                        prop_assert!(
                            entered.is_some_and(|&t| t < e.second),
                            "{o}: LEAVE not after ENTER at {}", e.reader
                        );
                    }
                }
                last_kind.insert(e.reader.raw(), e.kind);
            }
        }
    }

    /// The tentpole's absorbability contract as a property: ANY delivery
    /// schedule that respects the reorder window, with any duplication
    /// pattern, leaves the collector's aggregated state identical to
    /// clean in-order ingestion.
    #[test]
    fn windowed_reorder_and_duplicates_are_absorbed(
        steps in proptest::collection::vec(
            (proptest::option::of((0u32..3, 0u32..4)), 0u64..4, 0u64..2),
            5..60
        ),
    ) {
        const WINDOW: u64 = 3;
        let mut clean = DataCollector::new();
        let mut faulted = DataCollector::new();
        faulted.set_reorder_window(WINDOW);
        let mut deliveries: BTreeMap<u64, Vec<(u64, ObjectId, ReaderId)>> = BTreeMap::new();
        let last = steps.len() as u64 - 1;
        for (s, (step, delay, dup)) in steps.iter().enumerate() {
            let second = s as u64;
            let det: Vec<(ObjectId, ReaderId)> = step
                .map(|(o, r)| (ObjectId::new(o), ReaderId::new(r)))
                .into_iter()
                .collect();
            clean.ingest_second(second, &det);
            for &(o, r) in &det {
                let slot = deliveries.entry(second + delay).or_default();
                slot.push((second, o, r));
                if *dup == 1 {
                    slot.push((second, o, r));
                }
            }
        }
        for s in 0..=last + WINDOW {
            let batch = deliveries.remove(&s).unwrap_or_default();
            faulted.ingest_delivery(s, &batch);
        }
        faulted.flush_through(last);
        for o in (0..3).map(ObjectId::new) {
            prop_assert_eq!(
                clean.last_two_devices(o),
                faulted.last_two_devices(o),
                "device window diverged for {}", o
            );
            prop_assert_eq!(
                clean.last_episode(o),
                faulted.last_episode(o),
                "episode diverged for {}", o
            );
            prop_assert_eq!(
                clean.events(o),
                faulted.events(o),
                "events diverged for {}", o
            );
            match (clean.aggregated(o), faulted.aggregated(o)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.start_second, b.start_second);
                    prop_assert_eq!(&a.entries, &b.entries);
                }
                (a, b) => prop_assert!(
                    false,
                    "presence mismatch: {:?} vs {:?}", a.is_some(), b.is_some()
                ),
            }
        }
    }

    #[test]
    fn collector_retention_is_bounded(
        detections in proptest::collection::vec((0u32..5, 0u32..6), 10..300),
    ) {
        // Random walk of detections with occasional silent seconds.
        let mut c = DataCollector::new();
        for (s, &(o, r)) in detections.iter().enumerate() {
            let second = s as u64;
            if r == 5 {
                c.ingest_second(second, &[]);
            } else {
                c.ingest_second(second, &[(ObjectId::new(o), ReaderId::new(r))]);
            }
        }
        for o in (0..5).map(ObjectId::new) {
            if let Some(agg) = c.aggregated(o) {
                // Retained window ends at or before the present and starts
                // at the older of the two most recent episodes.
                prop_assert!(agg.start_second <= agg.end_second());
                prop_assert!(
                    agg.entries.len() as u64 <= detections.len() as u64,
                    "cannot retain more than fed"
                );
                let (_, first, _) = c.last_episode(o).expect("detected object");
                prop_assert!(agg.start_second <= first);
            }
        }
    }
}
