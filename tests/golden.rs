//! Golden regression test: a canned floor plan and RFID trace pushed
//! through the full pipeline, with the exact Algorithm 3 (range) and
//! Algorithm 4 (kNN) outputs pinned bit-for-bit against a committed
//! fixture.
//!
//! The expected file stores each probability both as its IEEE-754 bit
//! pattern (compared exactly) and as a human-readable decimal. After an
//! *intentional* numeric change, regenerate with
//!
//! ```text
//! RIPQ_REGEN_GOLDEN=1 cargo test --test golden
//! ```
//!
//! and commit the updated `tests/fixtures/expected_queries.txt` together
//! with a note explaining why the numbers moved.

use ripq::core::{
    EvaluationReport, IndoorQuerySystem, QueryId, ResultSet, SystemConfig, TimingMode,
};
use ripq::floorplan::{FloorPlan, FloorPlanBuilder};
use ripq::geom::{Point2, Rect};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const SEED: u64 = 0x60_1D;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Parses the `hallway` / `room` / `door` line format of
/// `tests/fixtures/mini_plan.txt`.
fn load_plan() -> FloorPlan {
    let text = std::fs::read_to_string(fixture_path("mini_plan.txt")).expect("plan fixture");
    let mut b = FloorPlanBuilder::new();
    let mut halls = Vec::new();
    let mut rooms = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        let num = |i: usize| f[i].parse::<f64>().expect("numeric field");
        match f[0] {
            "hallway" => {
                halls.push(b.add_hallway(Rect::new(num(1), num(2), num(3), num(4)), f[5]));
            }
            "room" => {
                rooms.push(b.add_room(Rect::new(num(1), num(2), num(3), num(4)), f[5]));
            }
            "door" => {
                let room = rooms[f[3].parse::<usize>().expect("room index")];
                let hall = halls[f[4].parse::<usize>().expect("hallway index")];
                b.add_door(Point2::new(num(1), num(2)), room, hall);
            }
            other => panic!("unknown plan directive {other:?}"),
        }
    }
    b.build().expect("fixture plan is valid")
}

/// Feeds `mini_trace.txt` into the system and evaluates one range and one
/// kNN query at `now`.
fn run_fixture() -> (EvaluationReport, QueryId, QueryId, u64) {
    run_fixture_with(SystemConfig::default())
}

/// [`run_fixture`] with caller control over the config knobs the golden
/// tests vary (observability, timing mode). Reader count and pruning are
/// pinned here so every variant evaluates the same workload.
fn run_fixture_with(base: SystemConfig) -> (EvaluationReport, QueryId, QueryId, u64) {
    let config = SystemConfig {
        reader_count: 6,
        // The fixture exercises the evaluators, not the optimizer; keep
        // every object a candidate so the outputs cover all three.
        prune_candidates: false,
        ..base
    };
    let mut sys = IndoorQuerySystem::new(load_plan(), config, SEED);
    let readers: Vec<_> = sys.readers().iter().map(|r| r.id()).collect();

    let text = std::fs::read_to_string(fixture_path("mini_trace.txt")).expect("trace fixture");
    let mut by_second: std::collections::BTreeMap<u64, Vec<(ripq::rfid::ObjectId, _)>> =
        std::collections::BTreeMap::new();
    let mut last = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        let second: u64 = f[0].parse().expect("second");
        let object: u32 = f[1].parse().expect("object");
        let reader: usize = f[2].parse().expect("reader index");
        by_second
            .entry(second)
            .or_default()
            .push((ripq::rfid::ObjectId::new(object), readers[reader]));
        last = last.max(second);
    }
    let now = last + 3;
    for s in 0..=now {
        let det = by_second.remove(&s).unwrap_or_default();
        sys.ingest_detections(s, &det);
    }

    let range_q = sys
        .register_range(Rect::new(2.0, 6.0, 12.0, 5.0))
        .expect("range query");
    let knn_q = sys
        .register_knn(Point2::new(12.0, 9.0), 2)
        .expect("kNN query");
    (sys.evaluate(now), range_q, knn_q, now)
}

/// Renders a result set as stable `kind object bits decimal` lines.
fn render(out: &mut String, kind: &str, rs: &ResultSet) {
    for r in rs.sorted() {
        writeln!(
            out,
            "{kind} {} {:016x} {:.17e}",
            r.object.raw(),
            r.probability.to_bits(),
            r.probability
        )
        .expect("string write");
    }
}

#[test]
fn golden_range_and_knn_outputs() {
    let (report, range_q, knn_q, now) = run_fixture();
    let mut actual = String::new();
    writeln!(
        actual,
        "# Golden Algorithm 3/4 outputs at t={now}, seed {SEED:#x}.\n\
         # Regenerate: RIPQ_REGEN_GOLDEN=1 cargo test --test golden\n\
         # format: <kind> <object> <f64-bits-hex> <decimal>"
    )
    .expect("string write");
    writeln!(
        actual,
        "candidates_processed {}",
        report.candidates_processed
    )
    .unwrap();
    render(&mut actual, "range", &report.range_results[&range_q]);
    render(&mut actual, "knn", &report.knn_results[&knn_q]);

    let path = fixture_path("expected_queries.txt");
    if std::env::var_os("RIPQ_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .expect("missing golden fixture; run with RIPQ_REGEN_GOLDEN=1 to create it");
    assert_eq!(
        expected, actual,
        "query outputs drifted from the golden fixture; if the change is \
         intentional, regenerate with RIPQ_REGEN_GOLDEN=1 cargo test --test golden"
    );
}

/// The observability layer gets the same treatment as the query outputs:
/// the full metrics snapshot of a logical-timing fixture run is pinned
/// byte-for-byte. Counter, histogram, or span drift — a stage silently
/// dropping its instrumentation, a changed SIR iteration count — fails
/// here even when the query probabilities happen to survive.
#[test]
fn golden_metrics_snapshot() {
    let (report, _, _, _) = run_fixture_with(SystemConfig {
        observability: true,
        timing: TimingMode::Logical,
        ..SystemConfig::default()
    });
    let actual = report
        .metrics
        .expect("observability on yields a snapshot")
        .to_json();

    let path = fixture_path("expected_metrics.json");
    if std::env::var_os("RIPQ_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden metrics fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .expect("missing golden metrics fixture; run with RIPQ_REGEN_GOLDEN=1 to create it");
    assert_eq!(
        expected, actual,
        "metrics snapshot drifted from the golden fixture; if the change is \
         intentional, regenerate with RIPQ_REGEN_GOLDEN=1 cargo test --test golden"
    );
}

/// The fixture itself must stay meaningful: all three objects detected,
/// and both queries returning non-trivial probability.
#[test]
fn golden_fixture_is_nontrivial() {
    let (report, range_q, knn_q, _) = run_fixture();
    assert_eq!(report.objects_known, 3);
    assert_eq!(report.candidates_processed, 3);
    assert!(report.range_results[&range_q].total_probability() > 0.05);
    assert!(report.knn_results[&knn_q].total_probability() > 0.5);
}
