//! End-to-end tests of the `ripq` command-line binary.

use std::process::Command;

fn ripq(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ripq"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn defaults_prints_table_2() {
    let out = ripq(&["defaults"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("particles:        64"));
    assert!(text.contains("moving objects:   200"));
    assert!(text.contains("activation range: 2 m"));
}

#[test]
fn plan_reports_all_topologies() {
    for (kind, rooms) in [("office", 30), ("mall", 16), ("subway", 10), ("tower", 90)] {
        let out = ripq(&["plan", kind]);
        assert!(out.status.success(), "{kind} failed");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(
            text.contains(&format!("rooms:     {rooms}")),
            "{kind}: {text}"
        );
        assert!(text.contains("connected: true"), "{kind} graph connected");
    }
}

#[test]
fn plan_writes_svg() {
    let path = std::env::temp_dir().join("ripq_cli_test_plan.svg");
    let _ = std::fs::remove_file(&path);
    let out = ripq(&["plan", "office", "--svg", path.to_str().unwrap()]);
    assert!(out.status.success());
    let svg = std::fs::read_to_string(&path).expect("SVG written");
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("<circle"), "readers drawn");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_reconstructs_and_reports_error() {
    let out = ripq(&["trace", "--object", "1", "--duration", "120", "--seed", "5"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("mean error") || text.contains("never detected"),
        "unexpected output: {text}"
    );
}

#[test]
fn simulate_reports_fault_plan_and_stays_deterministic() {
    let args = [
        "simulate",
        "--objects",
        "6",
        "--duration",
        "80",
        "--fault-drop",
        "0.2",
        "--fault-dup",
        "0.1",
        "--fault-delay",
        "2",
    ];
    let out = ripq(&args);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("fault plan: drop 0.200, dup 0.100, delay <= 2 s"),
        "fault plan not echoed: {text}"
    );
    assert!(text.contains("range-query KL divergence"));
    // Same flags, same numbers: the faulted CLI path is reproducible.
    let again = String::from_utf8(ripq(&args).stdout).unwrap();
    assert_eq!(text, again);
    // Without fault flags, no fault plan line appears.
    let clean = String::from_utf8(ripq(&["simulate", "--objects", "6", "--duration", "80"]).stdout)
        .unwrap();
    assert!(!clean.contains("fault plan"));
}

#[test]
fn unwritable_metrics_json_is_a_clean_error() {
    let dir = std::env::temp_dir().join("ripq_cli_test_missing_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("metrics.json"); // parent doesn't exist
    let out = ripq(&[
        "simulate",
        "--objects",
        "4",
        "--duration",
        "60",
        "--metrics-json",
        path.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "must exit nonzero");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("error: io error"),
        "expected a RipqError::Io message, got: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "must fail cleanly, not panic: {err}"
    );
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = ripq(&["bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"));
}

#[test]
fn help_exits_zero() {
    let out = ripq(&[]);
    assert!(out.status.success());
}
