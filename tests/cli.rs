//! End-to-end tests of the `ripq` command-line binary.

use std::process::Command;

fn ripq(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ripq"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn defaults_prints_table_2() {
    let out = ripq(&["defaults"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("particles:        64"));
    assert!(text.contains("moving objects:   200"));
    assert!(text.contains("activation range: 2 m"));
}

#[test]
fn plan_reports_all_topologies() {
    for (kind, rooms) in [("office", 30), ("mall", 16), ("subway", 10), ("tower", 90)] {
        let out = ripq(&["plan", kind]);
        assert!(out.status.success(), "{kind} failed");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(
            text.contains(&format!("rooms:     {rooms}")),
            "{kind}: {text}"
        );
        assert!(text.contains("connected: true"), "{kind} graph connected");
    }
}

#[test]
fn plan_writes_svg() {
    let path = std::env::temp_dir().join("ripq_cli_test_plan.svg");
    let _ = std::fs::remove_file(&path);
    let out = ripq(&["plan", "office", "--svg", path.to_str().unwrap()]);
    assert!(out.status.success());
    let svg = std::fs::read_to_string(&path).expect("SVG written");
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("<circle"), "readers drawn");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_reconstructs_and_reports_error() {
    let out = ripq(&["trace", "--object", "1", "--duration", "120", "--seed", "5"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("mean error") || text.contains("never detected"),
        "unexpected output: {text}"
    );
}

#[test]
fn simulate_reports_fault_plan_and_stays_deterministic() {
    let args = [
        "simulate",
        "--objects",
        "6",
        "--duration",
        "80",
        "--fault-drop",
        "0.2",
        "--fault-dup",
        "0.1",
        "--fault-delay",
        "2",
    ];
    let out = ripq(&args);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("fault plan: drop 0.200, dup 0.100, delay <= 2 s"),
        "fault plan not echoed: {text}"
    );
    assert!(text.contains("range-query KL divergence"));
    // Same flags, same numbers: the faulted CLI path is reproducible.
    let again = String::from_utf8(ripq(&args).stdout).unwrap();
    assert_eq!(text, again);
    // Without fault flags, no fault plan line appears.
    let clean = String::from_utf8(ripq(&["simulate", "--objects", "6", "--duration", "80"]).stdout)
        .unwrap();
    assert!(!clean.contains("fault plan"));
}

#[test]
fn unwritable_metrics_json_is_a_clean_error() {
    let dir = std::env::temp_dir().join("ripq_cli_test_missing_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("metrics.json"); // parent doesn't exist
    let out = ripq(&[
        "simulate",
        "--objects",
        "4",
        "--duration",
        "60",
        "--metrics-json",
        path.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "must exit nonzero");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("error: io error"),
        "expected a RipqError::Io message, got: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "must fail cleanly, not panic: {err}"
    );
}

#[test]
fn unwritable_checkpoint_dir_is_a_clean_error() {
    // Plant a *file* where the directory should go: create_dir_all must
    // fail, and the CLI must surface it as a RipqError::Io up front.
    let blocker = std::env::temp_dir().join("ripq_cli_test_ckpt_blocker");
    let _ = std::fs::remove_dir_all(&blocker);
    let _ = std::fs::remove_file(&blocker);
    std::fs::write(&blocker, b"not a directory").unwrap();
    let out = ripq(&[
        "simulate",
        "--objects",
        "4",
        "--duration",
        "60",
        "--checkpoint-dir",
        blocker.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "must exit nonzero");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("error: io error"),
        "expected a RipqError::Io message, got: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "must fail cleanly, not panic: {err}"
    );
    // The failure is eager: no partial simulation output before it.
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(!text.contains("range-query KL divergence"), "{text}");
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn checkpointed_simulate_echoes_the_recovery_plan_and_resumes() {
    let dir = std::env::temp_dir().join("ripq_cli_test_ckpt_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let args = [
        "simulate",
        "--objects",
        "4",
        "--duration",
        "80",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--checkpoint-every",
        "20",
    ];
    // First run: plan echoed, cold start, snapshot left behind.
    let out = ripq(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("recovery plan: checkpoint to") && text.contains("every 20 s"),
        "plan not echoed: {text}"
    );
    assert!(text.contains("recovery: cold start"), "{text}");
    assert!(dir.join("experiment.ckpt").exists(), "snapshot written");

    // Second run over the same directory resumes from the snapshot.
    let again = String::from_utf8(ripq(&args).stdout).unwrap();
    assert!(
        again.contains("recovery: resumed from second 80"),
        "resume not echoed: {again}"
    );
    // The resumed tail reproduces the uninterrupted numbers exactly: every
    // accuracy line printed after the recovery banner matches run one.
    let tail = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("recovery:"))
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(tail(&text), tail(&again));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_budget_flag_is_echoed_and_deterministic() {
    let args = [
        "simulate",
        "--objects",
        "6",
        "--duration",
        "80",
        "--query-budget",
        "500",
    ];
    let out = ripq(&args);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("query budget: 500 cost units"),
        "budget not echoed: {text}"
    );
    assert!(text.contains("range-query KL divergence"));
    let again = String::from_utf8(ripq(&args).stdout).unwrap();
    assert_eq!(text, again, "budgeted runs must be reproducible");
}

#[test]
fn distance_backend_flag_changes_nothing_but_the_banner() {
    let base = ["simulate", "--objects", "6", "--duration", "80"];
    let dijkstra = ripq(&base);
    assert!(dijkstra.status.success());
    let dijkstra = String::from_utf8(dijkstra.stdout).unwrap();
    assert!(dijkstra.contains("dijkstra distances"), "{dijkstra}");

    let mut alt_args = base.to_vec();
    alt_args.extend(["--distance-backend", "alt"]);
    let alt = ripq(&alt_args);
    assert!(alt.status.success());
    let alt = String::from_utf8(alt.stdout).unwrap();
    assert!(alt.contains("alt distances"), "{alt}");

    // Identical output apart from the banner line: the ALT oracle is
    // bit-identical to Dijkstra on every reported number.
    let body = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("simulating"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(body(&dijkstra), body(&alt));

    let bad = ripq(&["simulate", "--distance-backend", "bogus"]);
    assert!(!bad.status.success(), "unknown backend must be rejected");
    let err = String::from_utf8(bad.stderr).unwrap();
    assert!(err.contains("unknown distance backend"), "{err}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = ripq(&["bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"));
}

#[test]
fn help_exits_zero() {
    let out = ripq(&[]);
    assert!(out.status.success());
}
